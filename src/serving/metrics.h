/**
 * @file
 * Per-request latency metrics of the serving subsystem: TTFT (arrival
 * to first generated token), TPOT (mean inter-token gap after the
 * first), end-to-end latency, queueing delay, tail percentiles and
 * aggregate token throughput — the quantities production serving SLOs
 * are written against, which the paper's closed [in, out] sweeps
 * cannot express.
 *
 * Records carry the id of the replica that served them, so the same
 * collector works at both scopes of the cluster layer: summarize()
 * aggregates fleet-wide, summarizeReplica() breaks the fleet down per
 * replica, and merge() folds per-replica collectors into one.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "serving/request.h"

namespace specontext {
namespace serving {

/** Latency record of one completed request. */
struct RequestRecord
{
    int64_t id = 0;
    int64_t replica = 0; ///< id of the replica that served the request
    int64_t prompt_len = 0;
    int64_t gen_len = 0;
    double arrival_seconds = 0.0;
    double admit_seconds = 0.0;
    double first_token_seconds = 0.0;
    double finish_seconds = 0.0;
    /** Times this request was evicted from the in-flight batch under
     *  KV pressure (Optimistic scheduling); 0 in Reserve mode. */
    int64_t preemptions = 0;
    /** Generated tokens re-prefilled across its restores. */
    int64_t recompute_tokens = 0;

    /** Time to first token: arrival -> first generated token. */
    double ttft() const { return first_token_seconds - arrival_seconds; }

    /** Mean time per output token after the first. */
    double
    tpot() const
    {
        if (gen_len <= 1)
            return 0.0;
        return (finish_seconds - first_token_seconds) /
               static_cast<double>(gen_len - 1);
    }

    /** End-to-end latency: arrival -> last token. */
    double e2e() const { return finish_seconds - arrival_seconds; }

    /** Time spent waiting for admission. */
    double queueDelay() const { return admit_seconds - arrival_seconds; }
};

/**
 * Aggregate view over all completed requests.
 *
 * Empty-series sentinel: when no record matches (a replica that
 * served zero requests, an empty collector), `completed` is 0 and
 * every mean/percentile/throughput field is exactly 0.0 —
 * well-defined values, never uninitialized or NaN — so callers can
 * gate on `completed == 0` without defensive checks.
 */
struct ServingSummary
{
    int64_t completed = 0;
    int64_t total_generated_tokens = 0;
    double makespan_seconds = 0.0;
    /** total_generated_tokens / makespan. */
    double throughput_tokens_per_s = 0.0;

    double ttft_mean = 0.0, ttft_p50 = 0.0, ttft_p95 = 0.0,
           ttft_p99 = 0.0;
    double tpot_mean = 0.0;
    double e2e_mean = 0.0, e2e_p50 = 0.0, e2e_p95 = 0.0, e2e_p99 = 0.0;
    double queue_delay_mean = 0.0;

    // ---- Preemption (all zero under Reserve scheduling) -------------

    /** Completed requests that were preempted at least once. */
    int64_t preempted_completed = 0;
    /** Preemption events across all completed requests. */
    int64_t preemptions_total = 0;
    /** Generated tokens re-prefilled across all restores. */
    int64_t recompute_tokens = 0;
    /**
     * TTFT-inflation-per-preemption series: entry k is the mean TTFT
     * of completed requests preempted exactly k times (0.0 when no
     * request completed with that count), sized max-observed-count +
     * 1. Empty when no completed request was ever preempted — entry 0
     * alone would just repeat ttft_mean. Note TTFT is first-token
     * time, so only preemptions *before* the first token inflate it;
     * e2e inflation shows up regardless.
     */
    std::vector<double> ttft_mean_by_preemptions;
};

/**
 * How ServingMetrics::summarize() computes its percentiles.
 *
 *  - Exact (default): sort the full per-request series and read
 *    nearest-rank percentiles from it — bit-pinned, O(n log n) on the
 *    first read after new completions. Every bench and test baseline
 *    uses this mode.
 *  - Streaming: maintain per-scope digests incrementally at record()/
 *    merge() time — running sums for the means plus log-bucketed
 *    histograms (2% relative bucket width) for the percentiles — so
 *    each summarize() call costs O(buckets), independent of how many
 *    requests completed. Means stay bit-identical to Exact on an
 *    un-merged collector (same record-order accumulation); histogram
 *    percentiles carry the bucket's relative error (<= ~1%).
 *    Built for million-request sweeps polled mid-run.
 */
enum class SummaryMode { Exact, Streaming };

/** Collector of per-request records. */
class ServingMetrics
{
  public:
    /** Record a finished request (state must be Finished) served by
     *  `replica` (0 for the single-server case). */
    void record(const Request &r, int64_t replica = 0);

    /**
     * Switch percentile computation (see SummaryMode). Switching to
     * Streaming rebuilds the digests from the records seen so far in
     * one pass, so the mode can be set at any time; switching back to
     * Exact drops them. Records are always retained either way —
     * records(), replicaIds() and merge() are mode-independent.
     */
    void setSummaryMode(SummaryMode mode);
    SummaryMode summaryMode() const { return mode_; }

    int64_t count() const { return static_cast<int64_t>(records_.size()); }
    const std::vector<RequestRecord> &records() const { return records_; }

    /** Append another collector's records (fleet-wide aggregation);
     *  records keep their replica ids. */
    void merge(const ServingMetrics &other);

    /** Sorted distinct replica ids present in the records. */
    std::vector<int64_t> replicaIds() const;

    /**
     * Nearest-rank percentile of `values` (p in [0, 100]); exactly
     * 0.0 on an empty set (the defined empty sentinel — p is still
     * range-checked first). Exposed for tests and benches. Copies and
     * sorts — when reading several quantiles from one series, sort
     * once and use percentileSorted().
     */
    static double percentile(std::vector<double> values, double p);

    /** Nearest-rank percentile of an already ascending-sorted series;
     *  exactly 0.0 on an empty set (p is still range-checked). */
    static double percentileSorted(const std::vector<double> &sorted,
                                   double p);

    /** Aggregate over the records; `makespan` is trace start -> last
     *  retirement, the denominator of aggregate throughput. */
    ServingSummary summarize(double makespan_seconds) const;

    /** Aggregate over the records of one replica only; same shape as
     *  summarize(), so fleet and per-replica views read identically. */
    ServingSummary summarizeReplica(int64_t replica,
                                    double makespan_seconds) const;

  private:
    /** Sorted ttft/e2e series of one summarize scope, memoized so a
     *  polling caller (mid-run dashboards, the obs sampler's consumer)
     *  does not re-pay the O(n log n) sort per call. Sorting the same
     *  multiset is deterministic, so cached and fresh percentiles are
     *  bit-identical. */
    struct SortedSeries
    {
        std::vector<double> ttft;
        std::vector<double> e2e;
    };

    /** Shared body of summarize()/summarizeReplica(): accumulate means
     *  in record order (bit-pinned), then read percentiles from the
     *  memoized sorted series of this scope. */
    ServingSummary summarizeScoped(bool filter, int64_t replica,
                                   double makespan_seconds) const;

    /**
     * Streaming-mode per-scope digest: everything summarize() needs,
     * maintained incrementally so a poll never rescans the records.
     * Histograms are sparse log-spaced buckets (map bucket-index ->
     * count); bucket i covers [MIN_LAT * G^i, MIN_LAT * G^(i+1)) and
     * reports its geometric midpoint.
     */
    struct Digest
    {
        int64_t completed = 0;
        int64_t total_generated_tokens = 0;
        double ttft_sum = 0.0, e2e_sum = 0.0;
        double tpot_sum = 0.0, queue_sum = 0.0;
        int64_t preempted_completed = 0;
        int64_t preemptions_total = 0;
        int64_t recompute_tokens = 0;
        std::vector<double> ttft_by_preempt_sum;
        std::vector<int64_t> ttft_by_preempt_n;
        std::map<int32_t, int64_t> ttft_hist;
        std::map<int32_t, int64_t> e2e_hist;

        void add(const RequestRecord &r);
        void fold(const Digest &other);
    };

    /** Fold one record into the fleet digest and its replica's. */
    void digestRecord(const RequestRecord &r);
    ServingSummary summarizeDigest(const Digest &d,
                                   double makespan_seconds) const;

    std::vector<RequestRecord> records_;
    /** Per-scope memo (key: replica id, INT64_MIN = fleet-wide);
     *  cleared whenever records_ changes. */
    mutable std::map<int64_t, SortedSeries> series_cache_;
    SummaryMode mode_ = SummaryMode::Exact;
    /** Streaming digests (same keying as series_cache_); live only
     *  while mode_ == Streaming. */
    std::map<int64_t, Digest> digests_;
};

} // namespace serving
} // namespace specontext
