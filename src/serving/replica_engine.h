/**
 * @file
 * One continuous-batching replica as a steppable state machine — the
 * per-iteration loop extracted from serving::Server so a single engine
 * implementation drives both the single-server facade and the
 * multi-replica serving::Cluster.
 *
 * A ReplicaEngine owns one simulated device (its TimingConfig picks
 * the hardware, model geometry and SystemModel), the in-flight batch,
 * the prefix cache and a local clock; admission and preemption policy
 * live in the serving::Scheduler it embeds (which owns the waiting
 * queue and the memory-model admission test). The caller delivers
 * routed arrivals with deliver() and repeatedly invokes step(), which
 * runs one scheduling round at the replica's next event time:
 *
 *     admit while the Scheduler's discipline allows (each admission
 *     prefills the joiner, advancing the clock; in-flight requests
 *     stall for its duration) -> preempt victims while the next decode
 *     token would oversubscribe memory (Optimistic mode only) -> one
 *     decode iteration advancing every in-flight request by one token
 *     -> retire finished requests.
 *
 * Under SchedulerMode::Optimistic a preempted request releases its KV
 * and prefix-cache pins and re-enters the queue; its restore is
 * charged as a fresh prefill of prompt + already-generated tokens
 * (recompute) minus whatever prefix the cache still holds.
 *
 * Arrivals that land *during* a prefill must become admissible within
 * the same round (exactly what Server did with its trace cursor), so
 * step() takes an ingest callback invoked with the replica clock at
 * the round head and after every prefill; the cluster uses it to route
 * arrivals the advancing clock has just passed. Delivered requests
 * wait in a pending list until the replica clock reaches their arrival
 * time — a request can never be admitted before it arrives, however
 * early the router hands it over.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/timing_engine.h"
#include "kvcache/prefix_tree.h"
#include "obs/obs.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"

namespace specontext {
namespace serving {

/**
 * Per-replica prefix-cache knobs. With a non-zero budget the replica
 * keeps a kv::PrefixTree over the prompt tokens of admitted requests:
 * a request whose prompt prefix is cached skips prefill for the
 * matched tokens (TimingEngine charges only the uncached suffix), and
 * cached blocks occupy HBM that competes with live KV reservations —
 * the tree's budget is re-clamped every admission round to the
 * headroom sim::MemoryModel leaves next to the weights and the booked
 * KV. Budget 0 (the default) disables the cache and leaves the
 * replica's arithmetic bit-for-bit identical to the pre-cache engine.
 */
struct PrefixCacheConfig
{
    /** HBM byte budget for cached prefix KV; 0 disables the cache. */
    int64_t budget_bytes = 0;
    /** Tokens per cached block (match alignment). */
    int64_t page_size = 16;
    /** Slab-pool the tree's nodes (default). Off = new/delete per
     *  block; simulated results are bit-identical either way. */
    bool pooled = true;
};

/** Prefix-cache counters of one replica (or a fleet roll-up). */
struct PrefixCacheStats
{
    int64_t lookups = 0;      ///< admissions that consulted the cache
    int64_t hit_requests = 0; ///< admissions with a non-empty match
    /** Prompt tokens served from cache — the prefill work skipped. */
    int64_t hit_tokens = 0;
    /** Prompt tokens of every looked-up request (hit-rate denominator). */
    int64_t prompt_tokens = 0;
    int64_t inserted_tokens = 0; ///< new blocks created, in tokens
    int64_t evicted_tokens = 0;  ///< LRU evictions, in tokens
    int64_t resident_bytes = 0;  ///< cached bytes at the last round
    int64_t resident_tokens = 0; ///< cached tokens at the last round

    /** Fraction of looked-up prompt tokens served from cache. */
    double hitRate() const
    {
        return prompt_tokens > 0
                   ? static_cast<double>(hit_tokens) /
                         static_cast<double>(prompt_tokens)
                   : 0.0;
    }

    /** Fleet aggregation: counters sum (resident across replicas). */
    void merge(const PrefixCacheStats &other);
};

/** Configuration of one replica (Server reuses this shape). */
struct ReplicaConfig
{
    core::TimingConfig timing; ///< system, geometry, hardware, budget
    QueuePolicy queue_policy = QueuePolicy::Fifo;
    /** Hard cap on in-flight requests (scheduler table size); memory
     *  admission usually binds first. */
    int64_t max_batch = 64;
    /** Replica id stamped on metrics records (cluster index). */
    int64_t id = 0;
    /** Display name; defaulted to "replica<id>(<hw>/<system>)". */
    std::string name;
    /** Shared-prefix KV cache; disabled (budget 0) by default. */
    PrefixCacheConfig prefix_cache;
    /** Admission discipline: Reserve (pessimistic final-length
     *  booking, the bit-pinned default) or Optimistic (current
     *  footprint + KV-pressure preemption). */
    SchedulerMode scheduler_mode = SchedulerMode::Reserve;
    /** Who is evicted first under Optimistic KV pressure. */
    VictimPolicy victim_policy = VictimPolicy::LastAdmitted;
    /** Observability hooks (trace / counters / sampler); all-null by
     *  default, which is bit-for-bit the unobserved engine. */
    obs::Observability obs;
};

/** Outcome of serving one trace (single replica or aggregated fleet). */
struct ServeResult
{
    ServingMetrics metrics;    ///< completed requests
    std::vector<Request> rejected; ///< individually infeasible requests
    double makespan_seconds = 0.0;
    int64_t iterations = 0;    ///< decode iterations executed
    int64_t peak_in_flight = 0;
    PrefixCacheStats prefix;   ///< all-zero when the cache is disabled
    PreemptionStats preempt;   ///< all-zero in Reserve mode

    int64_t completed() const { return metrics.count(); }
    ServingSummary summary() const
    {
        return metrics.summarize(makespan_seconds);
    }
};

/** One steppable continuous-batching replica. */
class ReplicaEngine
{
  public:
    /** Called with the replica clock whenever arrivals up to that
     *  instant must be made deliverable (round head and after each
     *  prefill). */
    using IngestFn = std::function<void(double)>;

    /**
     * @throws std::invalid_argument when cfg.timing.system cannot be
     * continuously batched or max_batch is non-positive.
     */
    ReplicaEngine(const core::TimingEngine &engine, ReplicaConfig cfg);

    const ReplicaConfig &config() const { return cfg_; }
    const AdmissionController &admission() const
    {
        return scheduler_.admission();
    }
    const Scheduler &scheduler() const { return scheduler_; }

    /** True when this replica admits optimistically (and preempts). */
    bool optimistic() const { return scheduler_.optimistic(); }

    // ---- State inspection (router policies read these) --------------

    /** Local clock, simulated seconds from trace start. */
    double now() const { return now_; }

    int64_t inFlight() const
    {
        return static_cast<int64_t>(active_.size());
    }

    /** Requests delivered but not yet admitted (queued + pending). */
    int64_t waiting() const
    {
        return scheduler_.queueSize() +
               static_cast<int64_t>(pending_.size()) - pending_next_;
    }

    /** All requests this replica still owes work to. */
    int64_t outstanding() const { return inFlight() + waiting(); }

    /** Sum of final-length KV reservations (tokens) over every
     *  outstanding request — the booked load signal Reserve-mode
     *  routing reads. */
    int64_t reservedKvTokens() const;

    /** Sum of *current* KV contexts (tokens) over every outstanding
     *  request — in-flight requests at their live kvLen(), waiting
     *  ones at the restore length they would prefill today. The live
     *  occupancy signal Optimistic-mode routing reads. */
    int64_t liveKvTokens() const;

    /** Bytes of KV the replica can hold in HBM next to the weights
     *  (>= 1; the least-KV router's normalizer, so heterogeneous
     *  replicas compare by load *fraction*). */
    int64_t kvCapacityBytes() const;

    /** reservedKvTokens() priced in bytes / kvCapacityBytes(). */
    double kvLoadFraction(int64_t extra_final_len_tokens = 0) const;

    /**
     * Mode-aware routing load: the fraction of kvCapacityBytes() this
     * replica would hold if `r` were added. Reserve replicas price
     * booked reservations (bit-identical to
     * kvLoadFraction(r.finalLen())); Optimistic replicas price live
     * occupancy — what actually sits in HBM now — because booked
     * final lengths systematically overstate a preemptive replica's
     * pressure.
     */
    double routingLoadFraction(const Request &r) const;

    /** True when this replica keeps a prefix cache (configured budget
     *  > 0). Stays true through transient live-KV pressure that
     *  clamps the tree's working budget to 0 — the cache revives when
     *  headroom returns. */
    bool prefixCacheEnabled() const
    {
        return configured_prefix_budget_ > 0;
    }

    /**
     * Prompt tokens of `r` this replica could serve from its prefix
     * cache right now (capped at prompt_len - 1 — prefill always
     * computes at least the last prompt token). 0 when the cache is
     * disabled or `r` carries no prompt tokens. Read-only; the
     * prefix-affinity router scores replicas with it.
     */
    int64_t prefixHitTokens(const Request &r) const;

    /** Live prefix-cache counters (also folded into result().prefix). */
    const PrefixCacheStats &prefixStats() const { return result_.prefix; }

    // ---- Driving -----------------------------------------------------

    /** Hand over a routed request; it waits in the pending list until
     *  the replica clock reaches its arrival time. Deliveries must be
     *  in non-decreasing arrival order per replica.
     *  @throws std::invalid_argument when prompt_tokens is non-empty
     *  but its size disagrees with prompt_len. */
    void deliver(Request r);

    /**
     * Simulated time of this replica's next state change: now() when
     * admissible or in-flight work exists, the earliest pending
     * arrival when it is idle but booked, +infinity when fully idle.
     */
    double nextEventSeconds() const;

    /** True when nextEventSeconds() is +infinity. */
    bool idle() const;

    /**
     * True when the next step() round would be *pure decode*: requests
     * are in flight, nothing is admissible (empty queue) and no
     * pending delivery has arrived yet. Such a round touches only this
     * engine's own state — no ingest callback can route, no admission
     * can prefill — which is what makes it safe to run ahead of the
     * global event order (skip-ahead) or concurrently with other
     * replicas' pure-decode rounds (Cluster's parallel lanes).
     */
    bool pureDecodeReady() const
    {
        return !active_.empty() && scheduler_.queueEmpty() &&
               (pending_next_ >= static_cast<int64_t>(pending_.size()) ||
                pending_[pending_next_].arrival_seconds > now_);
    }

    /**
     * Earliest future instant at which this replica could possibly
     * run an *admission* round. Admission rounds are the fleet's only
     * cross-replica interaction outside the driver's own boundaries:
     * their prefills invoke the ingest callback, which may route
     * arrivals against every replica's current state. Skip-ahead on
     * any OTHER lane must therefore never advance past this instant —
     * it is the fleet-internal component of the bulk-stepping horizon.
     *
     *  - queued work: now() — the very next round admits;
     *  - Optimistic with a live batch: a preemption (whose restore
     *    puts an admission one round later) is the hazard. Without
     *    lookahead that forces now(); when step() has a live
     *    decode-fit window (decodeFitRounds) covering n more rounds
     *    and no in-flight request can retire within them, neither a
     *    preemption nor a retirement can touch the batch before n
     *    rounds have run — each lasting at least the evaluator's
     *    structural minRoundSeconds() floor — so now() + n * floor is
     *    a sound lower bound (still clipped by the pending head's
     *    arrival: the round crossing it becomes an admission round).
     *    The bound widens skip-ahead windows only; it never feeds
     *    simulated arithmetic.
     *  - pending deliveries only: the head's arrival time (the round
     *    that crosses it turns into an admission round);
     *  - otherwise +infinity — a Reserve replica with nothing waiting
     *    can only decode and retire until the next delivery, and
     *    deliveries themselves only happen at routing instants the
     *    driver already bounds by.
     */
    double nextPossibleAdmissionSeconds() const
    {
        if (!scheduler_.queueEmpty())
            return now_;
        if (optimistic() && !active_.empty()) {
            double cap = now_;
            if (decode_eval_ && opt_fit_rounds_ > 0) {
                const double floor_s = decode_eval_->minRoundSeconds();
                if (floor_s > 0.0) {
                    int64_t n = opt_fit_rounds_;
                    // `generated` lags a deferred window's rounds
                    // (see win_defer_rounds_); discount them so the
                    // bound is what an eager reconciliation would
                    // have read.
                    for (const Request &r : active_)
                        n = std::min(n, r.gen_len - r.generated -
                                            win_defer_rounds_);
                    if (n > 0)
                        cap = now_ + static_cast<double>(n) * floor_s;
                }
            }
            if (pending_next_ < static_cast<int64_t>(pending_.size())) {
                const double arr =
                    pending_[pending_next_].arrival_seconds;
                cap = std::min(cap, arr > now_ ? arr : now_);
            }
            return cap;
        }
        if (pending_next_ < static_cast<int64_t>(pending_.size()))
            return pending_[pending_next_].arrival_seconds > now_
                       ? pending_[pending_next_].arrival_seconds
                       : now_;
        return std::numeric_limits<double>::infinity();
    }

    /**
     * Run one scheduling round at nextEventSeconds() (the clock jumps
     * there first when the replica is idle-but-booked).
     *
     * Skip-ahead fast path: while `horizon` lies ahead of the local
     * clock, the engine keeps executing follow-on *pure-decode* rounds
     * (preempt-check, decode iteration, retire — the exact per-round
     * arithmetic, in the exact order) inside this one call instead of
     * returning to the event loop after each token. The loop stops the
     * moment a round needs the outside world again — the queue or an
     * arrived pending delivery makes the next round an admission
     * round, the batch drains idle, or the clock reaches `horizon` —
     * so results are bit-identical to single-round stepping provided
     * the caller bounds `horizon` by the next external boundary it
     * owns (next unrouted arrival, control tick, sampler cadence
     * crossing). The default (-infinity) runs exactly one round.
     *
     * Observability is exact under skip-ahead: DecodeStep events and
     * decode counters are emitted per iteration inside the loop;
     * gauges publish once at exit with last-round values, which is
     * what a boundary reader would have seen anyway.
     *
     * @throws std::logic_error when invoked on a fully idle replica.
     */
    void step(const IngestFn &ingest = nullptr,
              double horizon = -std::numeric_limits<double>::infinity());

    /**
     * Toggle the cached decode-cost evaluator
     * (core::DecodeEvaluator): on, the per-iteration decode price
     * comes from a per-lane evaluator that derives the cost/memory
     * models once per batch size; off (the construction default), each
     * iteration re-derives them through the TimingEngine façade — the
     * pre-fast-path cost profile. Either way the simulated durations
     * are bit-identical; drivers set this from
     * SimFastPath::cache_decode_costs.
     */
    void setDecodeCostCache(bool on);

    /** Results accumulated so far; makespan_seconds tracks the clock
     *  at the last completed round. */
    const ServeResult &result() const { return result_; }

    /** Move the accumulated results out (engine is spent afterwards). */
    ServeResult takeResult() { return std::move(result_); }

  private:
    const core::TimingEngine &engine_;
    ReplicaConfig cfg_;
    Scheduler scheduler_;
    /** Fast-path decode pricer (null = per-call façade path). */
    std::unique_ptr<core::DecodeEvaluator> decode_eval_;
    /** Cached admission-time prefill pricer (set with decode_eval_);
     *  null = per-call requestPrefillSeconds, bit-identical. */
    std::unique_ptr<core::PrefillEvaluator> prefill_eval_;

    double now_ = 0.0;
    std::vector<Request> active_;
    std::vector<Request> pending_; ///< delivered, arrival not reached
    int64_t pending_next_ = 0;     ///< first live index into pending_
    /**
     * Optimistic decode-fit window: how many future rounds are still
     * proven to pass the preemption check from the *current* batch
     * state (Scheduler::decodeFitRounds, probed once per window and
     * decremented per round run). -1 = unknown, recompute before the
     * next bulk window. Invalidated whenever the batch composition
     * changes (admission, retirement, preemption) — the prediction
     * assumes uniform +1 growth of a fixed membership. Reserve-mode
     * engines never read it.
     */
    int64_t opt_fit_rounds_ = -1;
    /** The decode evaluator's bulk window is still open from the last
     *  step(): the batch composition has not changed since, so its
     *  incremental reduced integers (attended total, s_max, crossing
     *  bookkeeping) are exactly what a fresh beginWindow() on the
     *  grown lengths would derive — the next window continues it and
     *  skips the O(batch) re-scan. Any admission, preemption,
     *  retirement or per-round-path iteration closes the window. */
    bool win_live_ = false;
    /** Running Σ finalLen() over active_, maintained at every
     *  admission, preemption and retirement: the router reads every
     *  lane's reserved KV on every arrival, and the integer total is
     *  associative, so the cache is exactly the scan it replaces. */
    int64_t active_final_tokens_ = 0;
    /** Retirement bound (min remaining gen tokens across the batch)
     *  carried by a live window; each reconciliation discounts the
     *  rounds just run, so a continued window skips the O(batch)
     *  rescan. Meaningful only while win_live_ is true. */
    int64_t win_k_retire_ = 0;
    /** Rounds a live window has run that are not yet applied to the
     *  Request objects (generated, KV mirror). While a window is
     *  continued across steps no request can retire (the window is
     *  capped below win_k_retire_) and nothing per-request changes
     *  except the uniform +1-per-round growth, so the O(batch) pass
     *  is deferred: `generated` lags every active request by exactly
     *  this count, and the few readers that look at live lengths
     *  between flushes compensate arithmetically (integer-exact).
     *  flushWindow() applies the lag; retirement windows, traced
     *  runs and any batch mutation flush eagerly. Non-zero only
     *  while win_live_ is true. */
    int64_t win_defer_rounds_ = 0;
    /** Decode-iteration kv_lens buffer, reused across rounds so the
     *  hot loop allocates nothing in steady state. */
    std::vector<int64_t> kv_scratch_;
    double last_delivered_arrival_ = 0.0; ///< delivery-order guard
    ServeResult result_;
    kv::PrefixTree prefix_tree_;
    /** Capacity-clamped configured budget — the cache's on/off truth.
     *  The tree's own budget is a *working* value syncPrefixBudget()
     *  squeezes under live-KV pressure and later restores. */
    int64_t configured_prefix_budget_ = 0;
    /** Geometry-derived constants, frozen at construction: KV bytes
     *  one token occupies and the HBM left next to the weights
     *  (clamped to >= 1). Both are pure functions of the immutable
     *  replica config, but re-deriving them walks the LLM parameter
     *  count — and the router asks for the load fraction of every
     *  candidate lane on every arrival. */
    int64_t kv_bytes_per_token_ = 0;
    int64_t kv_capacity_bytes_ = 1;
    /** MemoryModel::modelBytes() of this replica's config — the Eq. 6
     *  weight term syncPrefixBudget() subtracts on every admission.
     *  Constructing the model just to read this walked the whole
     *  parameter count per admission. */
    int64_t model_bytes_ = 0;
    /** Pin held for each in-flight request, keyed by its admission's
     *  unique pin slot (Request::prefix_pin_slot); released at
     *  retirement or preemption. Flat (slot, pin) table: it holds at
     *  most max_batch entries, so a backward linear scan beats a hash
     *  map — and sheds the per-admission node allocation the map paid. */
    std::vector<std::pair<int64_t, kv::PrefixHandle>> prefix_pins_;
    int64_t next_pin_slot_ = 0;

    /** Per-replica counter/gauge slots (resolved once at
     *  construction; meaningful only when counters_ is non-null). */
    struct CounterSlots
    {
        obs::CounterRegistry::Handle enqueued_requests = 0;
        obs::CounterRegistry::Handle admitted_requests = 0;
        obs::CounterRegistry::Handle admitted_prefill_tokens = 0;
        obs::CounterRegistry::Handle prefix_hit_tokens = 0;
        obs::CounterRegistry::Handle preemptions = 0;
        obs::CounterRegistry::Handle preempted_tokens = 0;
        obs::CounterRegistry::Handle restores = 0;
        obs::CounterRegistry::Handle recompute_tokens = 0;
        obs::CounterRegistry::Handle completed_requests = 0;
        obs::CounterRegistry::Handle rejected_requests = 0;
        obs::CounterRegistry::Handle generated_tokens = 0;
        obs::CounterRegistry::Handle decode_iterations = 0;
        obs::CounterRegistry::Handle queue_depth = 0;      ///< gauge
        obs::CounterRegistry::Handle in_flight = 0;        ///< gauge
        obs::CounterRegistry::Handle live_kv_bytes = 0;    ///< gauge
        obs::CounterRegistry::Handle prefix_resident_bytes = 0; ///< gauge
        obs::CounterRegistry::Handle prefix_pinned_bytes = 0;   ///< gauge
    };

    /** Observability (all optional): the event ring, the counter
     *  registry and this replica's resolved slots. */
    obs::Trace *trace_ = nullptr;
    obs::CounterRegistry *counters_ = nullptr;
    CounterSlots slots_;
    /** Last KvClamp working budget emitted, so the trace records
     *  budget *changes*, not every admission's re-clamp. */
    int64_t last_clamp_emitted_ = -1;

    /** Move pending requests with arrival <= t into the queue. */
    void ingestPending(double t);

    /** Refresh this replica's gauges (queue depth, in-flight, live KV
     *  bytes, prefix residency); called at every step() exit so a
     *  mid-run snapshot or sampler row always sees current levels. */
    void publishGauges();

    /** Shrink the tree's budget to min(configured budget, HBM headroom
     *  left by weights + outstanding KV + `extra_reserved_tokens` — the
     *  admission candidate in flight between queue and active_),
     *  pricing the weights through sim::MemoryModel — cached prefixes
     *  yield to live KV. Outstanding KV is booked final lengths in
     *  Reserve mode and live contexts in Optimistic mode (matching
     *  what each discipline actually holds). Pinned blocks plus
     *  `extra_budget_tokens` (the candidate's about-to-be-pinned
     *  prompt blocks) ride on top of the clamp: they are live KV the
     *  reservations already pay for, so one physical copy is never
     *  charged twice. */
    void syncPrefixBudget(int64_t extra_reserved_tokens = 0,
                          int64_t extra_budget_tokens = 0);

    /** Cache consultation at admission: returns the prefill tokens
     *  skipped for `r` and pins its prompt path in the tree — one
     *  combined kv::PrefixTree::matchAndPin() traversal with the
     *  budget re-clamp as its resize callback. */
    int64_t admitThroughPrefixCache(Request &r);

    /** Apply win_defer_rounds_ to every active request (generated and
     *  the KV mirror) and reset the lag to zero. Must run before any
     *  code reads or mutates per-request live state directly:
     *  admission (resident scan, optimistic fitsCurrent), the
     *  optimistic pressure check, victim selection, and the per-round
     *  fallback. The evaluator's window stays open — a flush restores
     *  the eager-reconciliation invariant without closing anything. */
    void flushWindow();

    /** Optimistic KV pressure: evict the Scheduler's victim from the
     *  in-flight batch — release its prefix pin, count the preemption
     *  and re-enqueue it for recompute. */
    void preemptVictim();

    /** Release the prefix pin registered under `slot` and drop its
     *  table entry (swap-pop; scan from the back — recent pins release
     *  most often). No-op when the slot is absent. */
    void releasePinSlot(int64_t slot);

    /** Copy the tree's lifetime counters into result_.prefix. */
    void snapshotPrefixStats();
};

} // namespace serving
} // namespace specontext
