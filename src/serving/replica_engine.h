/**
 * @file
 * One continuous-batching replica as a steppable state machine — the
 * per-iteration loop extracted from serving::Server so a single engine
 * implementation drives both the single-server facade and the
 * multi-replica serving::Cluster.
 *
 * A ReplicaEngine owns one simulated device (its TimingConfig picks
 * the hardware, model geometry and SystemModel), a waiting queue, the
 * in-flight batch and a local clock. The caller delivers routed
 * arrivals with deliver() and repeatedly invokes step(), which runs
 * one scheduling round at the replica's next event time:
 *
 *     admit while headroom lasts (each admission prefills the joiner,
 *     advancing the clock; in-flight requests stall for its duration)
 *     -> one decode iteration advancing every in-flight request by one
 *     token -> retire finished requests.
 *
 * Arrivals that land *during* a prefill must become admissible within
 * the same round (exactly what Server did with its trace cursor), so
 * step() takes an ingest callback invoked with the replica clock at
 * the round head and after every prefill; the cluster uses it to route
 * arrivals the advancing clock has just passed. Delivered requests
 * wait in a pending list until the replica clock reaches their arrival
 * time — a request can never be admitted before it arrives, however
 * early the router hands it over.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/timing_engine.h"
#include "serving/admission.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/request_queue.h"

namespace specontext {
namespace serving {

/** Configuration of one replica (Server reuses this shape). */
struct ReplicaConfig
{
    core::TimingConfig timing; ///< system, geometry, hardware, budget
    QueuePolicy queue_policy = QueuePolicy::Fifo;
    /** Hard cap on in-flight requests (scheduler table size); memory
     *  admission usually binds first. */
    int64_t max_batch = 64;
    /** Replica id stamped on metrics records (cluster index). */
    int64_t id = 0;
    /** Display name; defaulted to "replica<id>(<hw>/<system>)". */
    std::string name;
};

/** Outcome of serving one trace (single replica or aggregated fleet). */
struct ServeResult
{
    ServingMetrics metrics;    ///< completed requests
    std::vector<Request> rejected; ///< individually infeasible requests
    double makespan_seconds = 0.0;
    int64_t iterations = 0;    ///< decode iterations executed
    int64_t peak_in_flight = 0;

    int64_t completed() const { return metrics.count(); }
    ServingSummary summary() const
    {
        return metrics.summarize(makespan_seconds);
    }
};

/** One steppable continuous-batching replica. */
class ReplicaEngine
{
  public:
    /** Called with the replica clock whenever arrivals up to that
     *  instant must be made deliverable (round head and after each
     *  prefill). */
    using IngestFn = std::function<void(double)>;

    /**
     * @throws std::invalid_argument when cfg.timing.system cannot be
     * continuously batched or max_batch is non-positive.
     */
    ReplicaEngine(const core::TimingEngine &engine, ReplicaConfig cfg);

    const ReplicaConfig &config() const { return cfg_; }
    const AdmissionController &admission() const { return admission_; }

    // ---- State inspection (router policies read these) --------------

    /** Local clock, simulated seconds from trace start. */
    double now() const { return now_; }

    int64_t inFlight() const
    {
        return static_cast<int64_t>(active_.size());
    }

    /** Requests delivered but not yet admitted (queued + pending). */
    int64_t waiting() const
    {
        return queue_.size() + static_cast<int64_t>(pending_.size()) -
               pending_next_;
    }

    /** All requests this replica still owes work to. */
    int64_t outstanding() const { return inFlight() + waiting(); }

    /** Sum of final-length KV reservations (tokens) over every
     *  outstanding request — the load signal of least-KV routing. */
    int64_t reservedKvTokens() const;

    /** Bytes of KV the replica can hold in HBM next to the weights
     *  (>= 1; the least-KV router's normalizer, so heterogeneous
     *  replicas compare by load *fraction*). */
    int64_t kvCapacityBytes() const;

    /** reservedKvTokens() priced in bytes / kvCapacityBytes(). */
    double kvLoadFraction(int64_t extra_final_len_tokens = 0) const;

    // ---- Driving -----------------------------------------------------

    /** Hand over a routed request; it waits in the pending list until
     *  the replica clock reaches its arrival time. Deliveries must be
     *  in non-decreasing arrival order per replica. */
    void deliver(Request r);

    /**
     * Simulated time of this replica's next state change: now() when
     * admissible or in-flight work exists, the earliest pending
     * arrival when it is idle but booked, +infinity when fully idle.
     */
    double nextEventSeconds() const;

    /** True when nextEventSeconds() is +infinity. */
    bool idle() const;

    /**
     * Run one scheduling round at nextEventSeconds() (the clock jumps
     * there first when the replica is idle-but-booked).
     * @throws std::logic_error when invoked on a fully idle replica.
     */
    void step(const IngestFn &ingest = nullptr);

    /** Results accumulated so far; makespan_seconds tracks the clock
     *  at the last completed round. */
    const ServeResult &result() const { return result_; }

    /** Move the accumulated results out (engine is spent afterwards). */
    ServeResult takeResult() { return std::move(result_); }

  private:
    const core::TimingEngine &engine_;
    ReplicaConfig cfg_;
    AdmissionController admission_;

    double now_ = 0.0;
    RequestQueue queue_;
    std::vector<Request> active_;
    std::vector<Request> pending_; ///< delivered, arrival not reached
    int64_t pending_next_ = 0;     ///< first live index into pending_
    int64_t queued_kv_tokens_ = 0; ///< final-length tokens in queue_
    double last_delivered_arrival_ = 0.0; ///< delivery-order guard
    ServeResult result_;

    /** Move pending requests with arrival <= t into the queue. */
    void ingestPending(double t);
};

} // namespace serving
} // namespace specontext
