/**
 * @file
 * Service-level objectives the autoscaling control plane steers by.
 *
 * The fleet-sizing question the cluster benches answer offline ("how
 * many replicas does this load need to hold a p99 TTFT target?") is
 * answered *online* here: an SloConfig names the latency target and
 * the queue-pressure watermarks, and autoscale::Controller holds the
 * fleet to them with as few replica-seconds as it can. Targets are
 * expressed in the same units the obs:: layer publishes — queue depth
 * per live replica from the `replica<i>.queue_depth` gauges, TTFT
 * from serving summaries — so attainment is checkable after a run
 * from the very counters the controller steered by.
 */
#pragma once

namespace specontext {
namespace autoscale {

/** The objectives one controller instance enforces. */
struct SloConfig
{
    /**
     * p99 time-to-first-token the fleet is sized against, simulated
     * seconds. Policies treat estimated queueing delay beyond a
     * fraction of this target as SLO pressure; benches score final
     * attainment against it (summary().ttft_p99 <= target).
     */
    double ttft_p99_target_seconds = 30.0;

    /**
     * High watermark: queued requests per live replica at which the
     * fleet counts as saturated (scale-up pressure). Queue depth is
     * the leading indicator of TTFT — a request's first token waits
     * behind everything queued ahead of it.
     */
    double queue_depth_high = 4.0;

    /** Low watermark: queued requests per live replica under which
     *  capacity counts as excess (scale-down pressure once sustained).
     *  Must be strictly below queue_depth_high — the gap is the
     *  hysteresis band that keeps the controller from flapping. */
    double queue_depth_low = 1.0;
};

/**
 * Validate an SloConfig.
 * @throws std::invalid_argument on a non-positive/non-finite TTFT
 * target, a non-positive/non-finite high watermark, a negative or
 * non-finite low watermark, or low >= high — naming the offending
 * knob.
 */
void validateSloConfig(const SloConfig &slo);

} // namespace autoscale
} // namespace specontext
