/**
 * @file
 * Pluggable scaling policies: given one tick's digested signals and
 * the SLO, answer "how many replicas should the fleet gain or lose?".
 *
 * The controller (controller.h) owns signal extraction — polling the
 * obs::CounterRegistry gauges and the obs::TimeseriesSampler window —
 * and hands every policy the same Signals struct, so policies stay
 * pure decision rules and are comparable head-to-head in
 * bench/bench_autoscale.cc:
 *
 *  - ThresholdPolicy: classic watermark hysteresis. Scale up the
 *    moment queue pressure or estimated wait crosses the SLO band;
 *    scale down only after the fleet has idled below the low
 *    watermark for a configurable number of consecutive ticks.
 *  - TargetUtilizationPolicy: queue-theoretic sizing. Estimate the
 *    per-replica service rate from completion-counter deltas (EWMA-
 *    smoothed), then size the fleet so offered load / capacity sits
 *    at a target utilization — the M/M/c-style rule of thumb that
 *    headroom, not zero queue, is what holds tail latency.
 *  - PredictivePolicy: step-ahead control. Project the queue one
 *    lookahead horizon forward along the sampler-window trend and act
 *    on the *projected* pressure — paying a warmup early so capacity
 *    lands before the wave does, and shedding it when the trend says
 *    the wave is over.
 */
#pragma once

#include <cstdint>
#include <string>

#include "autoscale/slo.h"

namespace specontext {
namespace autoscale {

/** One control tick's digested signals (controller-computed). */
struct Signals
{
    double now_seconds = 0.0;
    // Fleet shape (from serving::FleetState).
    size_t live = 0;
    size_t warming = 0;
    size_t draining = 0;
    size_t min_replicas = 1;
    size_t max_replicas = 1;
    // Levels polled from the counter registry's gauges.
    int64_t queued = 0;       ///< Σ replica<i>.queue_depth
    int64_t in_flight = 0;    ///< Σ replica<i>.in_flight
    int64_t live_kv_bytes = 0;///< Σ replica<i>.live_kv_bytes
    // Windowed rates from counter deltas between ticks.
    double arrival_rate_per_s = 0.0;    ///< d enqueued / dt
    double completion_rate_per_s = 0.0; ///< d completed / dt
    /** Queue-depth slope over the sampler window, requests per
     *  second; 0 without a sampler. */
    double queue_trend_per_s = 0.0;
    /** Estimated queueing delay of a newly arrived request: queued /
     *  observed fleet completion rate (infinity when the fleet
     *  completes nothing while work is queued). */
    double est_wait_seconds = 0.0;
};

/** Decision rule interface; implementations may keep state across
 *  ticks (hysteresis counters, EWMAs) — reset() clears it so one
 *  instance can score several runs reproducibly. */
class ScalePolicy
{
  public:
    virtual ~ScalePolicy() = default;

    /** Stable policy name (bench rows, decision logs). */
    virtual const char *name() const = 0;

    /** Desired replica-count delta this tick (positive = attach,
     *  negative = retire); the cluster clamps to [min, max]. */
    virtual int desiredDelta(const Signals &s, const SloConfig &slo) = 0;

    /** Forget cross-tick state (default: nothing to forget). */
    virtual void reset() {}
};

/** Watermark hysteresis knobs. */
struct ThresholdPolicyConfig
{
    /** Consecutive below-low-watermark ticks required before one
     *  replica is released (the hysteresis that prevents flapping). */
    int consecutive_low_ticks = 3;
    /** Replicas added per saturated tick. */
    int up_step = 1;
};

/** Watermark hysteresis: up fast on pressure, down slowly on idle. */
class ThresholdPolicy final : public ScalePolicy
{
  public:
    explicit ThresholdPolicy(ThresholdPolicyConfig cfg = {});

    const char *name() const override { return "threshold"; }
    int desiredDelta(const Signals &s, const SloConfig &slo) override;
    void reset() override { low_ticks_ = 0; }

  private:
    ThresholdPolicyConfig cfg_;
    int low_ticks_ = 0;
};

/** Queue-theoretic sizing knobs. */
struct TargetUtilizationPolicyConfig
{
    /** Offered-load fraction each live replica should run at; the
     *  1 - target headroom is what absorbs bursts between ticks. */
    double target_utilization = 0.7;
    /** EWMA smoothing of the per-replica service-rate estimate. */
    double ewma_alpha = 0.3;
};

/** Size the fleet to arrival_rate / (mu * target_utilization). */
class TargetUtilizationPolicy final : public ScalePolicy
{
  public:
    explicit TargetUtilizationPolicy(
        TargetUtilizationPolicyConfig cfg = {});

    const char *name() const override { return "target-utilization"; }
    int desiredDelta(const Signals &s, const SloConfig &slo) override;
    void reset() override { mu_per_replica_ = 0.0; }

  private:
    TargetUtilizationPolicyConfig cfg_;
    /** EWMA of completions per second per busy live replica. */
    double mu_per_replica_ = 0.0;
};

/** Step-ahead knobs. */
struct PredictivePolicyConfig
{
    /** How far ahead the queue trend is projected — set it near the
     *  replica warmup time, so capacity ordered on a projection goes
     *  live right when the projection lands. */
    double lookahead_seconds = 30.0;
    /** Consecutive projected-idle ticks before release (shares the
     *  threshold policy's anti-flap rationale). */
    int consecutive_low_ticks = 2;
};

/** Act on the queue projected one lookahead ahead of now. */
class PredictivePolicy final : public ScalePolicy
{
  public:
    explicit PredictivePolicy(PredictivePolicyConfig cfg = {});

    const char *name() const override { return "predictive"; }
    int desiredDelta(const Signals &s, const SloConfig &slo) override;
    void reset() override { low_ticks_ = 0; }

  private:
    PredictivePolicyConfig cfg_;
    int low_ticks_ = 0;
};

} // namespace autoscale
} // namespace specontext
