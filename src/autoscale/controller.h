/**
 * @file
 * The SLO-driven autoscaling controller: the serving::FleetController
 * implementation that closes the loop between the observability layer
 * and the elastic cluster.
 *
 * Each control tick the serving::Cluster hands over the fleet's shape
 * (serving::FleetState); the Controller digests its *signals* from the
 * obs:: layer it was built over —
 *
 *  - levels, by polling the obs::CounterRegistry gauges every replica
 *    publishes (`replica<i>.queue_depth`, `.in_flight`,
 *    `.live_kv_bytes`) through the handle-indexed gauge() accessor;
 *  - rates, from counter deltas between ticks (`.enqueued_requests`,
 *    `.completed_requests`);
 *  - trends, from the obs::TimeseriesSampler window (fleet queue
 *    depth slope over the trailing trend_window_seconds);
 *
 * — evaluates the plugged ScalePolicy against the SloConfig, logs the
 * decision, and returns the replica-count delta. Reading through obs
 * rather than reaching into engine internals is deliberate: the
 * controller sees exactly what a production control plane would see
 * (gauges as of each replica's last step — monitoring lag included),
 * and the decision log can be cross-checked against the very counters
 * it steered by (examples/autoscale.cpp does exactly that).
 *
 * Replica slots appear dynamically as the fleet scales, so gauge and
 * counter handles are discovered incrementally from the registry's
 * append-only name list — slots registered after construction are
 * picked up on the next tick.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "autoscale/policy.h"
#include "autoscale/slo.h"
#include "obs/counters.h"
#include "obs/sampler.h"
#include "serving/cluster.h"

namespace specontext {
namespace autoscale {

/** Controller wiring. All pointers are caller-owned and must outlive
 *  the controller. */
struct ControllerConfig
{
    SloConfig slo;
    /** Decision rule; required. */
    ScalePolicy *policy = nullptr;
    /** Registry the fleet publishes into; required (it is the
     *  controller's only window onto load). */
    const obs::CounterRegistry *counters = nullptr;
    /** Optional trend source; without it queue_trend_per_s is 0 and
     *  predictive policies degrade to reactive ones. */
    const obs::TimeseriesSampler *sampler = nullptr;
    /** Trailing window the queue-depth trend is fit over. */
    double trend_window_seconds = 60.0;
};

/** One logged control decision (tick order). */
struct Decision
{
    double t_seconds = 0.0;
    /** The digested signals the policy saw. */
    Signals signals;
    /** The policy's requested delta, before the cluster's [min, max]
     *  clamp. */
    int delta = 0;
};

/** SLO-driven FleetController over the obs:: layer. */
class Controller final : public serving::FleetController
{
  public:
    /**
     * @throws std::invalid_argument on a null policy or registry, a
     * bad SloConfig (validateSloConfig), or a non-positive/non-finite
     * trend window.
     */
    explicit Controller(ControllerConfig cfg);

    const ControllerConfig &config() const { return cfg_; }

    /** Cluster hook: digest signals, consult the policy, log, decide. */
    int control(const serving::FleetState &state) override;

    /** Every decision taken so far, in tick order. */
    const std::vector<Decision> &decisions() const { return log_; }

    /** Forget per-run state — counter baselines, discovered slots,
     *  the decision log and the policy's memory — so one controller
     *  can drive several runs bit-reproducibly. */
    void reset();

  private:
    /** Pick up replica slots registered since the last tick (the
     *  registry's name list is append-only, so a suffix scan sees
     *  exactly the new ones). */
    void refreshSlots();

    ControllerConfig cfg_;
    size_t names_seen_ = 0;
    std::vector<obs::CounterRegistry::Handle> queue_gauges_;
    std::vector<obs::CounterRegistry::Handle> in_flight_gauges_;
    std::vector<obs::CounterRegistry::Handle> kv_gauges_;
    std::vector<obs::CounterRegistry::Handle> enqueued_counters_;
    std::vector<obs::CounterRegistry::Handle> completed_counters_;
    bool have_baseline_ = false;
    double last_t_ = 0.0;
    int64_t last_enqueued_ = 0;
    int64_t last_completed_ = 0;
    std::vector<Decision> log_;
};

} // namespace autoscale
} // namespace specontext
