#include "autoscale/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace autoscale {

namespace {

/** Queued requests per live replica (the watermark unit); a fleet
 *  with queued work but zero live replicas counts as saturated. */
double
queuePerLive(const Signals &s)
{
    if (s.live == 0)
        return s.queued > 0
                   ? std::numeric_limits<double>::infinity()
                   : 0.0;
    return static_cast<double>(s.queued) /
           static_cast<double>(s.live);
}

/** SLO pressure: estimated queueing delay eating more than half the
 *  TTFT budget — prefill and scheduling need the other half. */
bool
waitPressure(const Signals &s, const SloConfig &slo)
{
    return s.est_wait_seconds > 0.5 * slo.ttft_p99_target_seconds;
}

} // namespace

ThresholdPolicy::ThresholdPolicy(ThresholdPolicyConfig cfg) : cfg_(cfg)
{
    if (cfg_.consecutive_low_ticks < 1)
        throw std::invalid_argument(
            "ThresholdPolicy: consecutive_low_ticks must be >= 1");
    if (cfg_.up_step < 1)
        throw std::invalid_argument(
            "ThresholdPolicy: up_step must be >= 1");
}

int
ThresholdPolicy::desiredDelta(const Signals &s, const SloConfig &slo)
{
    const double per_live = queuePerLive(s);
    if (per_live > slo.queue_depth_high || waitPressure(s, slo)) {
        low_ticks_ = 0;
        // Warming replicas are capacity already on order — re-ordering
        // every tick of a long warmup would overshoot straight to max.
        return std::max(
            0, cfg_.up_step - static_cast<int>(s.warming));
    }
    if (per_live < slo.queue_depth_low && !waitPressure(s, slo)) {
        if (++low_ticks_ >= cfg_.consecutive_low_ticks) {
            low_ticks_ = 0;
            return -1;
        }
        return 0;
    }
    // Inside the hysteresis band: hold, and restart the idle streak.
    low_ticks_ = 0;
    return 0;
}

TargetUtilizationPolicy::TargetUtilizationPolicy(
    TargetUtilizationPolicyConfig cfg)
    : cfg_(cfg)
{
    if (!(cfg_.target_utilization > 0.0) ||
        cfg_.target_utilization > 1.0)
        throw std::invalid_argument(
            "TargetUtilizationPolicy: target_utilization must be in "
            "(0, 1]");
    if (!(cfg_.ewma_alpha > 0.0) || cfg_.ewma_alpha > 1.0)
        throw std::invalid_argument(
            "TargetUtilizationPolicy: ewma_alpha must be in (0, 1]");
}

int
TargetUtilizationPolicy::desiredDelta(const Signals &s,
                                      const SloConfig &slo)
{
    // Learn the per-replica service rate from what the fleet actually
    // completes while it has work in flight — dividing by the live
    // count makes the estimate per machine, the EWMA smooths the
    // burstiness of completion arrivals.
    if (s.live > 0 && s.in_flight > 0 &&
        s.completion_rate_per_s > 0.0) {
        const double mu_obs = s.completion_rate_per_s /
                              static_cast<double>(s.live);
        mu_per_replica_ =
            mu_per_replica_ == 0.0
                ? mu_obs
                : cfg_.ewma_alpha * mu_obs +
                      (1.0 - cfg_.ewma_alpha) * mu_per_replica_;
    }
    const int64_t cap = static_cast<int64_t>(s.live + s.warming);
    if (mu_per_replica_ <= 0.0) {
        // No service-rate estimate yet (nothing completed): fall back
        // to the watermark rule so a cold start still reacts.
        const bool saturated =
            queuePerLive(s) > slo.queue_depth_high ||
            waitPressure(s, slo);
        return saturated && s.warming == 0 ? 1 : 0;
    }
    // M/M/c-flavoured sizing: replicas needed so offered load sits at
    // the target utilization of learned capacity.
    int64_t want = static_cast<int64_t>(std::ceil(
        s.arrival_rate_per_s /
        (mu_per_replica_ * cfg_.target_utilization)));
    // A backlog already past the watermark needs net-positive drain
    // capacity on top of keeping up with arrivals.
    if (queuePerLive(s) > slo.queue_depth_high || waitPressure(s, slo))
        want = std::max(want, cap + 1);
    return static_cast<int>(want - cap);
}

PredictivePolicy::PredictivePolicy(PredictivePolicyConfig cfg)
    : cfg_(cfg)
{
    if (!(cfg_.lookahead_seconds > 0.0) ||
        !std::isfinite(cfg_.lookahead_seconds))
        throw std::invalid_argument(
            "PredictivePolicy: lookahead_seconds must be positive and "
            "finite");
    if (cfg_.consecutive_low_ticks < 1)
        throw std::invalid_argument(
            "PredictivePolicy: consecutive_low_ticks must be >= 1");
}

int
PredictivePolicy::desiredDelta(const Signals &s, const SloConfig &slo)
{
    // Project the fleet queue one lookahead ahead along the sampler-
    // window trend; capacity ordered now goes live roughly when the
    // projection lands (lookahead ~ warmup time).
    const double projected = std::max(
        0.0, static_cast<double>(s.queued) +
                 s.queue_trend_per_s * cfg_.lookahead_seconds);
    const double cap =
        static_cast<double>(s.live + s.warming);
    const double per_cap = projected / std::max(1.0, cap);
    if (per_cap > slo.queue_depth_high || waitPressure(s, slo)) {
        low_ticks_ = 0;
        // Order enough machines to push the projected depth back
        // under the high watermark in one decision — a flash crowd
        // outruns one-at-a-time scaling.
        const double want =
            std::ceil(projected / slo.queue_depth_high);
        const int delta = static_cast<int>(want - cap);
        return std::max(1, delta);
    }
    if (per_cap < slo.queue_depth_low &&
        queuePerLive(s) < slo.queue_depth_low) {
        if (++low_ticks_ >= cfg_.consecutive_low_ticks) {
            low_ticks_ = 0;
            return -1;
        }
        return 0;
    }
    low_ticks_ = 0;
    return 0;
}

} // namespace autoscale
} // namespace specontext
