#include "autoscale/controller.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace specontext {
namespace autoscale {

namespace {

bool
endsWith(const std::string &s, const char *suffix)
{
    const size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n &&
           s.compare(s.size() - n, n, suffix) == 0;
}

bool
isReplicaSlot(const std::string &name)
{
    return name.compare(0, 7, "replica") == 0;
}

} // namespace

Controller::Controller(ControllerConfig cfg) : cfg_(cfg)
{
    validateSloConfig(cfg_.slo);
    if (!cfg_.policy)
        throw std::invalid_argument("Controller: null policy");
    if (!cfg_.counters)
        throw std::invalid_argument(
            "Controller: null counter registry — the controller has "
            "no other window onto fleet load");
    if (!(cfg_.trend_window_seconds > 0.0) ||
        !std::isfinite(cfg_.trend_window_seconds))
        throw std::invalid_argument(
            "Controller: trend_window_seconds must be positive and "
            "finite");
}

void
Controller::refreshSlots()
{
    const std::vector<std::string> &names = cfg_.counters->names();
    for (size_t h = names_seen_; h < names.size(); ++h) {
        const std::string &n = names[h];
        if (!isReplicaSlot(n))
            continue;
        if (endsWith(n, ".queue_depth"))
            queue_gauges_.push_back(h);
        else if (endsWith(n, ".in_flight"))
            in_flight_gauges_.push_back(h);
        else if (endsWith(n, ".live_kv_bytes"))
            kv_gauges_.push_back(h);
        else if (endsWith(n, ".enqueued_requests"))
            enqueued_counters_.push_back(h);
        else if (endsWith(n, ".completed_requests"))
            completed_counters_.push_back(h);
    }
    names_seen_ = names.size();
}

int
Controller::control(const serving::FleetState &state)
{
    refreshSlots();

    Signals s;
    s.now_seconds = state.now_seconds;
    s.live = state.live;
    s.warming = state.warming;
    s.draining = state.draining;
    s.min_replicas = state.min_replicas;
    s.max_replicas = state.max_replicas;

    // Levels: poll the per-replica gauges through the handle path.
    // These are as of each replica's last step — the monitoring lag a
    // real control plane lives with.
    for (obs::CounterRegistry::Handle h : queue_gauges_)
        s.queued += cfg_.counters->gauge(h);
    for (obs::CounterRegistry::Handle h : in_flight_gauges_)
        s.in_flight += cfg_.counters->gauge(h);
    for (obs::CounterRegistry::Handle h : kv_gauges_)
        s.live_kv_bytes += cfg_.counters->gauge(h);

    // Rates: monotonic-counter deltas since the previous tick.
    int64_t enqueued = 0, completed = 0;
    for (obs::CounterRegistry::Handle h : enqueued_counters_)
        enqueued += cfg_.counters->value(h);
    for (obs::CounterRegistry::Handle h : completed_counters_)
        completed += cfg_.counters->value(h);
    if (have_baseline_ && state.now_seconds > last_t_) {
        const double dt = state.now_seconds - last_t_;
        s.arrival_rate_per_s =
            static_cast<double>(enqueued - last_enqueued_) / dt;
        s.completion_rate_per_s =
            static_cast<double>(completed - last_completed_) / dt;
    }
    s.est_wait_seconds =
        s.queued == 0
            ? 0.0
            : (s.completion_rate_per_s > 0.0
                   ? static_cast<double>(s.queued) /
                         s.completion_rate_per_s
                   : std::numeric_limits<double>::infinity());

    // Trend: fleet queue-depth slope over the trailing sampler window
    // (first vs last row inside it; rows may be ragged — slots
    // registered after a row was cut are absent from it and read 0).
    if (cfg_.sampler) {
        const std::vector<obs::SamplePoint> &rows =
            cfg_.sampler->samples();
        auto fleetQueueAt = [&](const obs::SamplePoint &row) {
            int64_t q = 0;
            for (obs::CounterRegistry::Handle h : queue_gauges_) {
                if (h < row.values.size())
                    q += row.values[h];
            }
            return q;
        };
        const double horizon =
            state.now_seconds - cfg_.trend_window_seconds;
        size_t first = rows.size();
        while (first > 0 && rows[first - 1].t_seconds >= horizon)
            --first;
        if (first < rows.size()) {
            const obs::SamplePoint &a = rows[first];
            const obs::SamplePoint &b = rows.back();
            if (b.t_seconds > a.t_seconds)
                s.queue_trend_per_s =
                    static_cast<double>(fleetQueueAt(b) -
                                        fleetQueueAt(a)) /
                    (b.t_seconds - a.t_seconds);
        }
    }

    const int delta = cfg_.policy->desiredDelta(s, cfg_.slo);
    log_.push_back({state.now_seconds, s, delta});

    have_baseline_ = true;
    last_t_ = state.now_seconds;
    last_enqueued_ = enqueued;
    last_completed_ = completed;
    return delta;
}

void
Controller::reset()
{
    names_seen_ = 0;
    queue_gauges_.clear();
    in_flight_gauges_.clear();
    kv_gauges_.clear();
    enqueued_counters_.clear();
    completed_counters_.clear();
    have_baseline_ = false;
    last_t_ = 0.0;
    last_enqueued_ = 0;
    last_completed_ = 0;
    log_.clear();
    cfg_.policy->reset();
}

} // namespace autoscale
} // namespace specontext
