#include "autoscale/slo.h"

#include <cmath>
#include <stdexcept>

namespace specontext {
namespace autoscale {

void
validateSloConfig(const SloConfig &slo)
{
    if (!(slo.ttft_p99_target_seconds > 0.0) ||
        !std::isfinite(slo.ttft_p99_target_seconds))
        throw std::invalid_argument(
            "SloConfig: ttft_p99_target_seconds must be positive and "
            "finite");
    if (!(slo.queue_depth_high > 0.0) ||
        !std::isfinite(slo.queue_depth_high))
        throw std::invalid_argument(
            "SloConfig: queue_depth_high must be positive and finite");
    if (slo.queue_depth_low < 0.0 ||
        !std::isfinite(slo.queue_depth_low))
        throw std::invalid_argument(
            "SloConfig: queue_depth_low must be non-negative and "
            "finite");
    if (slo.queue_depth_low >= slo.queue_depth_high)
        throw std::invalid_argument(
            "SloConfig: queue_depth_low must be strictly below "
            "queue_depth_high (the gap is the hysteresis band)");
}

} // namespace autoscale
} // namespace specontext
