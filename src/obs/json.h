/**
 * @file
 * Minimal JSON utilities of the observability layer: string escaping,
 * a flat `{"key": value, ...}` row builder, and a small DOM parser —
 * enough for the exporters (Chrome trace, counters dump, time-series)
 * and their round-trip validation in ctest, with zero external
 * dependencies.
 *
 * The row builder is also the shared backend of the bench JSON
 * emitters (bench/bench_util.h): every BENCH_*.json row is built
 * through it, so the formatting contract — `": "` after keys, `", "`
 * between fields, caller-chosen printf precision for doubles — lives
 * in exactly one place. The builder reproduces the historical
 * hand-rolled snprintf output byte-for-byte; the committed BENCH
 * files pin that.
 *
 * The parser builds a simple tagged-union DOM. It accepts exactly
 * standard JSON (RFC 8259): no comments, no trailing commas. It
 * exists for *validation and tests*, not performance.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace specontext {
namespace obs {

/** `s` with JSON string escapes applied ("\"" for quote, "\\" for
 *  backslash, \b \f \n \r \t, \u00XX for other control bytes). */
std::string jsonEscape(const std::string &s);

/**
 * Builder of one flat JSON object, fields in insertion order:
 *
 *     JsonRow row;
 *     row.str("mode", mode).num("load", load, "%.2f").num("n", n);
 *     out.push_back(row.render()); // {"mode": "x", "load": 0.05, "n": 4}
 */
class JsonRow
{
  public:
    /** Escaped string field. */
    JsonRow &str(const std::string &key, const std::string &value);

    /** Integer field. */
    JsonRow &num(const std::string &key, int64_t value);

    /** Double field under a printf format spec (default "%.2f" —
     *  always pass the spec the artifact's schema promises). */
    JsonRow &num(const std::string &key, double value,
                 const char *fmt = "%.2f");

    JsonRow &boolean(const std::string &key, bool value);

    /** Verbatim JSON fragment (an array, "null", a nested object). */
    JsonRow &raw(const std::string &key, const std::string &json);

    /** The assembled `{...}` object. */
    std::string render() const { return "{" + body_ + "}"; }

  private:
    JsonRow &field(const std::string &key, const std::string &rendered);
    std::string body_;
};

/** `[v, v, ...]` of doubles under one printf format spec. */
std::string jsonNumberArray(const std::vector<double> &values,
                            const char *fmt = "%.3f");

/** `[v, v, ...]` of integers. */
std::string jsonNumberArray(const std::vector<int64_t> &values);

/** `["s", "s", ...]` of escaped strings. */
std::string jsonStringArray(const std::vector<std::string> &values);

/** Parsed JSON value (tagged union). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Ordered map: object keys sorted; duplicate keys keep the last. */
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse `text` as one JSON document. Returns false (and sets `error`
 * to "offset N: reason" when non-null) on any syntax violation,
 * including trailing garbage after the document.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace obs
} // namespace specontext
