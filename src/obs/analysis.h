/**
 * @file
 * Analysis engine over the trace ring: replay the flight recorder
 * into per-request phase timelines with an *exact* accounting
 * identity, then roll them up into "blame" tables that answer the
 * question raw exports cannot — where did p99 TTFT go?
 *
 * A RequestTimeline splits a request's end-to-end latency into six
 * phases (router gap, queue wait, first prefill, preempt stall,
 * restore recompute, decode residual) that sum *bitwise* to its E2E
 * latency: phaseSum() == e2eSeconds() as doubles, not approximately.
 * The decode phase is computed as the exact residual of the other
 * five under a fixed left-to-right fold, so the identity holds by
 * construction; a request whose identity cannot be closed is flagged
 * incomplete, never silently fudged. The same contract holds for the
 * TTFT window (ttft_phases vs ttftSeconds()).
 *
 * Ring wrap-around is handled explicitly: a request whose Enqueue was
 * overwritten can never be mistaken for a complete timeline (all of a
 * request's events follow its Enqueue in emission order, so a
 * retained Enqueue plus the structural checks below exactly detects
 * truncation). Truncated requests land in TraceAnalysis::incomplete
 * with a reason string — never silently dropped, never rendered as if
 * whole.
 *
 * Analysis is strictly read-only over a Trace snapshot: it never
 * advances simulated time or touches the serving stack, so an
 * analyzed run is bit-identical to an unobserved one
 * (tests/test_analysis.cc pins this).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace specontext {
namespace obs {

class Trace;

/** The six phases of a request's end-to-end latency, in the fixed
 *  fold order of PhaseBreakdown::phaseSum(). */
enum class Phase : uint8_t {
    RouterGap,        ///< router placement -> replica enqueue
    QueueWait,        ///< enqueue -> first admission
    Prefill,          ///< first prefill iteration (incl. prefix reload)
    PreemptStall,     ///< evicted time: each Preempt -> its Restore
    RestoreRecompute, ///< re-prefill of restored context after Restore
    Decode,           ///< exact residual: decode rounds + batch
                      ///< interference (other requests' prefills)
};

constexpr size_t kPhaseCount = 6;

/** Stable lowercase name of a phase (export schema). */
const char *phaseName(Phase p);

/** Per-phase seconds. The accounting identity is defined over the
 *  fixed left-to-right fold of phaseSum() — reordering the sum would
 *  change the bits, so nothing here ever re-associates it. */
struct PhaseBreakdown
{
    double seconds[kPhaseCount] = {};

    double &operator[](Phase p) { return seconds[size_t(p)]; }
    double operator[](Phase p) const { return seconds[size_t(p)]; }

    /** Left-to-right fold in declaration order — the exact expression
     *  the accounting identity is stated over. */
    double phaseSum() const
    {
        double s = seconds[0];
        for (size_t i = 1; i < kPhaseCount; ++i)
            s += seconds[i];
        return s;
    }

    /** Largest phase (first wins ties). */
    Phase dominant() const;
};

/** One request's reconstructed lifecycle. */
struct RequestTimeline
{
    int64_t request = -1;
    int32_t replica = -1; ///< replica that enqueued (and served) it

    /** True when the whole lifecycle was retained and the accounting
     *  identity closed; false timelines carry incomplete_reason and
     *  land in TraceAnalysis::incomplete. */
    bool complete = false;
    std::string incomplete_reason;

    double arrival_seconds = 0.0; ///< RouterPlace (Enqueue if unrouted)
    double enqueue_seconds = 0.0;
    double admit_seconds = -1.0;       ///< first admission
    double first_token_seconds = -1.0; ///< first decode round after
                                       ///< the request's prefill
    double finish_seconds = -1.0;

    int64_t prompt_len = 0;
    int64_t gen_len = 0;
    int64_t preemptions = 0;
    /** Prefix-cache tokens served across first admit + restores. */
    int64_t prefix_hit_tokens = 0;
    /** Prefix-cache tokens of the *first* admission only (the hit
     *  bucket blame tables split on — restores can re-hit the same
     *  blocks, which would double-count the prompt). */
    int64_t first_hit_tokens = 0;

    /** E2E split; phases.phaseSum() == e2eSeconds() bitwise. */
    PhaseBreakdown phases;
    /** TTFT-window split; ttft_phases.phaseSum() == ttftSeconds()
     *  bitwise. Its Decode phase is "decode until first token". */
    PhaseBreakdown ttft_phases;

    double e2eSeconds() const { return finish_seconds - arrival_seconds; }
    double ttftSeconds() const
    {
        return first_token_seconds - arrival_seconds;
    }
};

/** analyzeTrace() result: reconstructed timelines plus the explicit
 *  truncation story. */
struct TraceAnalysis
{
    /** Fully retained lifecycles, identity closed; ascending request
     *  id. */
    std::vector<RequestTimeline> complete;
    /** Wrapped / partial lifecycles with reasons; ascending request
     *  id. */
    std::vector<RequestTimeline> incomplete;
    /** Requests that were rejected (terminal, no timeline). */
    int64_t rejected = 0;
    /** Events lost to ring wrap-around (Trace::dropped()). */
    uint64_t dropped_events = 0;

    /** True when the ring wrapped: timelines upstream of the retained
     *  window were truncated, and `incomplete` names the casualties. */
    bool truncated() const { return dropped_events > 0; }
};

/**
 * Replay the trace ring into per-request timelines. Pure function of
 * the snapshot: deterministic, no simulator access. Every complete
 * timeline satisfies both accounting identities bitwise.
 */
TraceAnalysis analyzeTrace(const Trace &trace);

/** Which latency the blame table attributes. */
enum class BlameMetric : uint8_t {
    E2E,  ///< arrival -> finish, over RequestTimeline::phases
    TTFT, ///< arrival -> first token, over ttft_phases
};

const char *blameMetricName(BlameMetric m);

/** One bucket row of a blame table. */
struct BlameRow
{
    /** "all", "preempt=0", "preempt=1", "preempt>=2", "prefix=none",
     *  "prefix=low", "prefix=high". */
    std::string bucket;
    size_t count = 0;
    double p50_seconds = 0.0;
    double p99_seconds = 0.0;
    /** Dominant phase of the nearest-rank request at p50 / p99 — the
     *  literal answer to "which phase dominates p99". */
    Phase dominant_p50 = Phase::Decode;
    Phase dominant_p99 = Phase::Decode;
    /** Mean per-phase share of the metric across the bucket (each
     *  request's breakdown normalized by its metric, then averaged);
     *  sums to ~1 for non-empty buckets. */
    double mean_share[kPhaseCount] = {};
};

/** Percentile attribution over one metric: which phase is to blame,
 *  split by preemption count and prefix-hit bucket. */
struct BlameTable
{
    BlameMetric metric = BlameMetric::E2E;
    /** "all" first, then the non-empty preempt= / prefix= buckets. */
    std::vector<BlameRow> rows;
};

/**
 * Build the blame table for `metric` over complete timelines.
 * Percentiles are nearest-rank (the serving-metrics convention).
 * Prefix-hit buckets split on first_hit_tokens / prompt_len: none
 * (= 0), low (< 0.5), high (>= 0.5).
 */
BlameTable blameTable(const std::vector<RequestTimeline> &timelines,
                      BlameMetric metric);

/** Nearest-rank percentile of `values` (pct in [0, 100]); 0 when
 *  empty. Sorts a copy — analysis-side convenience, not a hot path. */
double percentileSeconds(std::vector<double> values, double pct);

/** Mean per-phase share of `metric` across complete timelines (the
 *  characterization bench's phase-blame signature, kPhaseCount wide);
 *  zeros when empty. */
std::vector<double> phaseShareSignature(
    const std::vector<RequestTimeline> &timelines, BlameMetric metric);

} // namespace obs
} // namespace specontext
