#include "obs/regime.h"

#include <algorithm>
#include <cstdio>

#include "obs/counters.h"
#include "obs/sampler.h"

namespace specontext {
namespace obs {

const char *
regimeName(Regime r)
{
    switch (r) {
      case Regime::Idle: return "idle";
      case Regime::WarmupBound: return "warmup-bound";
      case Regime::KvBound: return "kv-bound";
      case Regime::PrefillBound: return "prefill-bound";
      case Regime::CacheBound: return "cache-bound";
      case Regime::SchedulerBound: return "scheduler-bound";
      case Regime::DecodeBound: return "decode-bound";
    }
    return "unknown";
}

Regime
RegimeTimeline::dominantRegime() const
{
    size_t best = 0;
    for (size_t i = 1; i < kRegimeCount; ++i)
        if (occupancy[i] > occupancy[best])
            best = i;
    return static_cast<Regime>(best);
}

Regime
classifyWindow(const RegimeSignals &s, const RegimeConfig &cfg)
{
    // Priority ladder, most-diagnostic signal first: a preemption is
    // proof of KV pressure however the rest of the window looked, a
    // warming replica explains degraded capacity before anything
    // else, and the work-composition tests only run on windows that
    // did work.
    if (s.warming_replicas > 0)
        return Regime::WarmupBound;
    if (s.preemptions > 0)
        return Regime::KvBound;
    const int64_t admitted = s.prefill_tokens + s.prefix_hit_tokens;
    if (admitted == 0 && s.generated_tokens == 0 &&
        s.queue_depth == 0 && s.in_flight == 0)
        return Regime::Idle;
    if (admitted > 0 &&
        static_cast<double>(s.prefix_hit_tokens) >=
            cfg.cache_hit_share * static_cast<double>(admitted))
        return Regime::CacheBound;
    if (static_cast<double>(s.prefill_tokens) >
        cfg.prefill_dominance * static_cast<double>(s.generated_tokens))
        return Regime::PrefillBound;
    if (s.queue_depth > 0 &&
        static_cast<double>(s.queue_depth) >
            cfg.scheduler_backlog *
                static_cast<double>(std::max<int64_t>(s.in_flight, 1)))
        return Regime::SchedulerBound;
    return Regime::DecodeBound;
}

namespace {

/** Column indices of one logical metric: every `replica<N>.<suffix>`
 *  slot (summed at read time). */
std::vector<size_t>
replicaColumns(const std::vector<std::string> &names,
               const char *suffix)
{
    std::vector<size_t> cols;
    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &n = names[i];
        if (n.rfind("replica", 0) != 0)
            continue;
        const size_t dot = n.find('.');
        if (dot == std::string::npos)
            continue;
        if (n.compare(dot + 1, std::string::npos, suffix) == 0)
            cols.push_back(i);
    }
    return cols;
}

int64_t
cellOf(const SamplePoint &row, size_t col)
{
    return col < row.values.size() ? row.values[col] : 0;
}

int64_t
sumOf(const SamplePoint &row, const std::vector<size_t> &cols)
{
    int64_t s = 0;
    for (const size_t c : cols)
        s += cellOf(row, c);
    return s;
}

} // namespace

RegimeTimeline
classifyRegimes(const TimeseriesSampler &sampler,
                const RegimeConfig &cfg)
{
    RegimeTimeline out;
    const std::vector<SamplePoint> &rows = sampler.samples();
    if (rows.size() < 2)
        return out;

    const std::vector<std::string> &names =
        sampler.registry().names();
    const std::vector<size_t> c_preempt =
        replicaColumns(names, "preemptions");
    const std::vector<size_t> c_prefill =
        replicaColumns(names, "admitted_prefill_tokens");
    const std::vector<size_t> c_generated =
        replicaColumns(names, "generated_tokens");
    const std::vector<size_t> c_hits =
        replicaColumns(names, "prefix_hit_tokens");
    const std::vector<size_t> c_queue =
        replicaColumns(names, "queue_depth");
    const std::vector<size_t> c_inflight =
        replicaColumns(names, "in_flight");
    std::vector<size_t> c_warming;
    for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == "cluster.warming_replicas")
            c_warming.push_back(i);

    out.windows.reserve(rows.size() - 1);
    for (size_t i = 0; i + 1 < rows.size(); ++i) {
        const SamplePoint &lo = rows[i];
        const SamplePoint &hi = rows[i + 1];
        RegimeWindow w;
        w.t_start_seconds = lo.t_seconds;
        w.t_end_seconds = hi.t_seconds;
        w.signals.preemptions = sumOf(hi, c_preempt) - sumOf(lo, c_preempt);
        w.signals.prefill_tokens =
            sumOf(hi, c_prefill) - sumOf(lo, c_prefill);
        w.signals.generated_tokens =
            sumOf(hi, c_generated) - sumOf(lo, c_generated);
        w.signals.prefix_hit_tokens =
            sumOf(hi, c_hits) - sumOf(lo, c_hits);
        w.signals.queue_depth = sumOf(hi, c_queue);
        w.signals.in_flight = sumOf(hi, c_inflight);
        w.signals.warming_replicas = sumOf(hi, c_warming);
        w.regime = classifyWindow(w.signals, cfg);
        const double span = w.t_end_seconds - w.t_start_seconds;
        out.occupancy[size_t(w.regime)] += span;
        out.total_seconds += span;
        out.windows.push_back(w);
    }
    if (out.total_seconds > 0.0)
        for (size_t i = 0; i < kRegimeCount; ++i)
            out.occupancy[i] /= out.total_seconds;
    return out;
}

bool
writeRegimeCsv(const RegimeTimeline &timeline, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::printf("cannot write %s\n", path.c_str());
        return false;
    }
    std::fputs(
        "t_start_seconds,t_end_seconds,regime,preemptions,"
        "prefill_tokens,generated_tokens,prefix_hit_tokens,"
        "queue_depth,in_flight,warming_replicas\n",
        f);
    for (const RegimeWindow &w : timeline.windows) {
        std::fprintf(
            f, "%.6f,%.6f,%s,%lld,%lld,%lld,%lld,%lld,%lld,%lld\n",
            w.t_start_seconds, w.t_end_seconds, regimeName(w.regime),
            static_cast<long long>(w.signals.preemptions),
            static_cast<long long>(w.signals.prefill_tokens),
            static_cast<long long>(w.signals.generated_tokens),
            static_cast<long long>(w.signals.prefix_hit_tokens),
            static_cast<long long>(w.signals.queue_depth),
            static_cast<long long>(w.signals.in_flight),
            static_cast<long long>(w.signals.warming_replicas));
    }
    std::fclose(f);
    std::printf("wrote %s (%zu windows)\n", path.c_str(),
                timeline.windows.size());
    return true;
}

} // namespace obs
} // namespace specontext
