/**
 * @file
 * Structured event tracing: a bounded ring buffer of typed, fixed-size
 * events stamped with simulated time, request id and replica id — the
 * always-available flight recorder of the serving stack (SESC's
 * EventTrace is the model: cheap enough to leave on, bounded so a
 * million-request run cannot exhaust memory).
 *
 * Every instrumentation site goes through the OBS_EVENT macro, which
 * is a null-pointer check when no trace is attached (the default —
 * the hot loop pays one predicted branch) and compiles to a true
 * no-op, argument expressions unevaluated, when the build defines
 * SPECONTEXT_OBS_ENABLED=0. Tracing only *records*: it never advances
 * simulated time or perturbs scheduling decisions, so results are
 * bit-identical with tracing on, off, or compiled out
 * (tests/test_obs.cc pins this).
 *
 * The ring keeps the most recent `capacity` events; older ones are
 * overwritten and counted in dropped(). snapshot() returns the
 * retained events oldest-first for the exporters
 * (obs::writeChromeTrace renders one Perfetto lane per replica).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace specontext {
namespace obs {

/** What happened. Payload fields `a`/`b` are typed per event below. */
enum class EventType : uint8_t {
    Enqueue,      ///< request entered a replica's waiting queue; a=prompt_len, b=gen_len
    Admit,        ///< joined the in-flight batch; a=prefix-cache hit tokens, b=current context (kvLen)
    PrefillStart, ///< prefill iteration begins; a=tokens to prefill, b=in-flight batch size before the join
    PrefillEnd,   ///< prefill iteration done; a=tokens prefilled, b=in-flight batch size after the join
    DecodeStep,   ///< one decode iteration (batch-level, request=-1); a=batch size, b=sum of context lengths
    Preempt,      ///< evicted under KV pressure; a=generated tokens at eviction, b=lifetime preemption count
    Restore,      ///< re-admission of a preempted request; a=generated tokens recomputed, b=prefix-cache hit tokens
    Complete,     ///< retired with all tokens generated; a=gen_len, b=lifetime preemption count
    Reject,       ///< infeasible even alone; a=prompt_len, b=gen_len
    RouterPlace,  ///< router placed an arrival (replica=target); a=prompt_len, b=router policy ordinal
    PrefixHit,    ///< admission served tokens from the prefix cache; a=hit tokens, b=prompt_len
    PrefixInsert, ///< new prefix blocks cached; a=tokens inserted, b=resident tokens after
    PrefixEvict,  ///< LRU block evicted (request=-1); a=tokens evicted, b=resident tokens after
    KvClamp,      ///< prefix-cache working budget re-clamped (request=-1); a=new working budget bytes, b=configured budget bytes
    FleetScale,   ///< elastic fleet transition (request=-1, replica=slot); a=serving::ScaleAction ordinal, b=live replicas after
};

/** Stable lowercase name of an event type (trace/export schema). */
const char *eventTypeName(EventType t);

/** One trace record. Fixed-size and trivially copyable by design —
 *  emit() is a couple of stores, and bytes/event is a published
 *  overhead metric (BENCH_obs.json). */
struct TraceEvent
{
    double t_seconds = 0.0; ///< simulated time of the event
    int64_t request = -1;   ///< request id; -1 for component-level events
    int64_t a = 0;          ///< payload (see EventType)
    int64_t b = 0;          ///< payload (see EventType)
    int32_t replica = -1;   ///< replica id; -1 for fleet-level events
    EventType type = EventType::Enqueue;
};

static_assert(sizeof(TraceEvent) <= 40,
              "TraceEvent grew past its 40-byte budget — emit() cost "
              "and ring memory are published overhead metrics");

/** Trace knobs. */
struct TraceConfig
{
    /** Events retained; older ones are overwritten (and counted). */
    size_t capacity = 1 << 16;
};

/** Bounded ring buffer of TraceEvents. Not thread-safe (the simulator
 *  is single-threaded; a parallel-stepping fleet would shard traces
 *  per replica and merge at export). */
class Trace
{
  public:
    /** @throws std::invalid_argument on zero capacity. */
    explicit Trace(TraceConfig cfg = {});

    const TraceConfig &config() const { return cfg_; }

    /** Append one event, overwriting the oldest past capacity. */
    void emit(EventType type, double t_seconds, int32_t replica,
              int64_t request, int64_t a = 0, int64_t b = 0)
    {
        TraceEvent e;
        e.t_seconds = t_seconds;
        e.request = request;
        e.a = a;
        e.b = b;
        e.replica = replica;
        e.type = type;
        if (ring_.size() < cfg_.capacity) {
            ring_.push_back(e);
        } else {
            ring_[head_] = e;
            head_ = (head_ + 1) % cfg_.capacity;
        }
        ++emitted_;
    }

    /** Events currently retained (<= capacity). */
    size_t size() const { return ring_.size(); }

    /** Events emitted over the trace's lifetime. */
    uint64_t emitted() const { return emitted_; }

    /** Events overwritten by ring wrap-around. */
    uint64_t dropped() const { return emitted_ - ring_.size(); }

    /** Retained events, oldest first (linearizes the ring). */
    std::vector<TraceEvent> snapshot() const;

    /** Drop every retained event and reset the lifetime counters. */
    void clear();

  private:
    TraceConfig cfg_;
    std::vector<TraceEvent> ring_;
    size_t head_ = 0; ///< oldest element once the ring is full
    uint64_t emitted_ = 0;
};

} // namespace obs
} // namespace specontext

/**
 * Instrumentation entry point: OBS_EVENT(trace_ptr, type, t, replica,
 * request[, a[, b]]). With SPECONTEXT_OBS_ENABLED=0 the macro expands
 * to ((void)0) — no argument evaluation, no branch, sizeof-level
 * proof that disabled tracing costs nothing.
 */
#ifndef SPECONTEXT_OBS_ENABLED
#define SPECONTEXT_OBS_ENABLED 1
#endif

#if SPECONTEXT_OBS_ENABLED
#define OBS_EVENT(trace_ptr, ...)                                      \
    do {                                                               \
        if (trace_ptr)                                                 \
            (trace_ptr)->emit(__VA_ARGS__);                            \
    } while (0)
#else
#define OBS_EVENT(trace_ptr, ...) ((void)0)
#endif
