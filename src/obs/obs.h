/**
 * @file
 * The observability context threaded through the serving stack: a
 * bundle of non-owning pointers to the trace ring, the counter
 * registry and the time-series sampler. Every component accepts one
 * by value in its config; all pointers default to nullptr, which is
 * "observability off" — the hot loop then pays a predicted null check
 * per site (or nothing at all with SPECONTEXT_OBS_ENABLED=0) and
 * produces bit-identical results (tests/test_obs.cc pins this).
 *
 * Lifetime: the caller that builds the Trace/CounterRegistry/Sampler
 * owns them and must keep them alive across the run they observe
 * (benches and examples stack-allocate them around Cluster::run).
 */
#pragma once

#include "obs/counters.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace specontext {
namespace obs {

/** Non-owning hooks into the three observability layers. */
struct Observability
{
    Trace *trace = nullptr;             ///< structured event ring
    CounterRegistry *counters = nullptr; ///< always-on counters/gauges
    TimeseriesSampler *sampler = nullptr; ///< fixed-cadence gauge sampling

    /** True when any layer is attached. */
    bool enabled() const { return trace || counters || sampler; }
};

} // namespace obs
} // namespace specontext
