/**
 * @file
 * Fixed-cadence time-series sampling over the counter registry: the
 * serving loop calls sample(now) as simulated time advances, and the
 * sampler records one row of every registered slot at each cadence
 * crossing — the raw material for "queue depth over time" / "live KV
 * occupancy over time" plots and the observation window a future
 * autoscaler trains its control loop on.
 *
 * Rows are stamped at the exact cadence instants (k * interval), not
 * at the event times that crossed them: counters only change at
 * discrete simulated events, so the value *at* the crossing equals
 * the value carried since the last event — sampling on crossing is
 * exact, not an approximation.
 *
 * The row count is bounded (max_samples); past the cap new crossings
 * are counted in droppedSamples() but not stored, so a million-
 * request sweep cannot balloon memory. Columns are the registry's
 * slots in registration order; slots registered after the first
 * sample produce ragged early rows, which the exporters pad with 0.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace specontext {
namespace obs {

class CounterRegistry;

/** Sampler knobs. */
struct TimeseriesSamplerConfig
{
    /** Simulated seconds between rows. */
    double interval_seconds = 1.0;
    /** Hard cap on stored rows (memory bound for long sweeps). */
    size_t max_samples = 1 << 16;
};

/** One recorded row: gauge/counter values at a cadence instant. */
struct SamplePoint
{
    double t_seconds = 0.0;
    /** Registry values in registration order at this instant; may be
     *  shorter than the registry's final width when slots were
     *  registered later (exporters pad with 0). */
    std::vector<int64_t> values;
};

/** Fixed-cadence recorder over one CounterRegistry. */
class TimeseriesSampler
{
  public:
    /** @throws std::invalid_argument on null registry or non-positive
     *  interval. */
    TimeseriesSampler(const CounterRegistry *registry,
                      TimeseriesSamplerConfig cfg = {});

    const TimeseriesSamplerConfig &config() const { return cfg_; }
    const CounterRegistry &registry() const { return *registry_; }

    /**
     * Record a row at every cadence instant in (last, now]; the first
     * row lands at t = 0 (trace start). Idempotent for non-advancing
     * time: sample(t) twice records once.
     */
    void sample(double now_seconds);

    /**
     * End-of-run flush: record cadence crossings up to `now_seconds`
     * (as sample() would), then one final partial row stamped at
     * `now_seconds` itself when it falls strictly between crossings —
     * so the last sub-cadence window (and a short run that ends inside
     * its first interval) is never silently absent from the CSV. A
     * flush exactly on a cadence instant adds nothing beyond the
     * regular row; flushing twice at the same instant records once.
     * The cadence grid is not shifted: a later sample() still cuts at
     * the original k * interval instants.
     */
    void flush(double now_seconds);

    const std::vector<SamplePoint> &samples() const { return samples_; }

    /** Next cadence instant a sample(now) call would record (the
     *  first uncut crossing). Event loops that skip ahead between
     *  events bound their jumps by this so no crossing is stepped
     *  over — rows are cut at exactly the instants the one-event-at-
     *  a-time loop would cut them. */
    double nextSampleSeconds() const { return next_sample_; }

    /** Cadence crossings past max_samples (counted, not stored). */
    uint64_t droppedSamples() const { return dropped_; }

  private:
    const CounterRegistry *registry_;
    TimeseriesSamplerConfig cfg_;
    std::vector<SamplePoint> samples_;
    double next_sample_ = 0.0;
    uint64_t dropped_ = 0;
};

} // namespace obs
} // namespace specontext
