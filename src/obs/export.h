/**
 * @file
 * Exporters of the observability layer:
 *
 *  - writeChromeTrace(): the event ring as Chrome trace-event JSON —
 *    one lane (tid) per replica, instant markers for every event plus
 *    reconstructed duration slices (request residency from
 *    Admit/Restore to Preempt/Complete, prefill from
 *    PrefillStart/End). Open the file at https://ui.perfetto.dev or
 *    chrome://tracing.
 *
 *  - writeCountersJson(): the counter registry as a flat JSON
 *    document, name-sorted, with counter/gauge kinds — the mid-run or
 *    end-of-run metrics dump.
 *
 *  - writeTimeseriesCsv(): the sampler's rows as CSV (one column per
 *    registered slot, one row per cadence instant) — ready for any
 *    plotting tool.
 *
 * All writers return false (after printing the reason) when the file
 * cannot be opened; output is deterministic for a given input, so
 * artifacts diff cleanly across runs.
 */
#pragma once

#include <string>
#include <vector>

namespace specontext {
namespace obs {

class CounterRegistry;
class TimeseriesSampler;
class Trace;
struct RegimeTimeline;

/**
 * Write `trace` as Chrome trace-event JSON to `path`. `lane_names`
 * optionally labels replica lanes (index = replica id) via
 * thread_name metadata; unnamed lanes show as "replica<N>".
 *
 * When the ring wrapped (trace.dropped() > 0) a synthetic "ring
 * wrapped, N events lost" slice covers the truncated range before the
 * earliest retained event, so a wrapped export can never be mistaken
 * for a complete one. `regimes` (optional) adds a fleet-regime
 * overlay lane — one slice per run of consecutive equal-regime
 * windows from classifyRegimes(); passing nullptr leaves the output
 * byte-identical to the pre-regime writer.
 */
bool writeChromeTrace(const Trace &trace, const std::string &path,
                      const std::vector<std::string> &lane_names = {},
                      const RegimeTimeline *regimes = nullptr);

/** Write `registry` as {"counters": [{name, kind, value}...]} (name-
 *  sorted) to `path`. */
bool writeCountersJson(const CounterRegistry &registry,
                       const std::string &path);

/** Write `sampler`'s rows as CSV to `path`: header
 *  `t_seconds,<slot>...`, rows padded with 0 for slots registered
 *  after the row was taken. */
bool writeTimeseriesCsv(const TimeseriesSampler &sampler,
                        const std::string &path);

} // namespace obs
} // namespace specontext
