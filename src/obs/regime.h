/**
 * @file
 * Fleet regime classification over the time-series feed: label each
 * sampler window with the resource that bound the fleet during it —
 * the roll-up that turns "50 columns of counters" into "the run spent
 * 62% of its time KV-bound".
 *
 * The classifier is a fixed priority ladder over per-window counter
 * deltas and end-of-window gauges (see classifyWindow()); it is a
 * pure function of the sampler rows, so identical runs classify
 * identically bit-for-bit, and the thresholds live in RegimeConfig
 * where a bench can pin them.
 *
 * Regimes (in classification priority order):
 *  - warmup-bound:    elastic replicas are loading weights; capacity
 *                     exists on paper but not in silicon.
 *  - kv-bound:        preemptions fired — live KV outgrew the budget
 *                     and the scheduler is evicting to stay feasible.
 *  - idle:            no work admitted, queued, or in flight.
 *  - cache-bound:     most admitted context tokens were served from
 *                     the prefix cache; throughput rides on hit rate.
 *  - prefill-bound:   admitted prefill tokens dwarf generated tokens;
 *                     the fleet is chewing prompts, not decoding.
 *  - scheduler-bound: the backlog exceeds what is in flight; latency
 *                     is made in the queue, not on the accelerator.
 *  - decode-bound:    the steady state — decode rounds dominate.
 *
 * The timeline exports as CSV (writeRegimeCsv) and as an overlay lane
 * in the Chrome trace (writeChromeTrace's `regimes` parameter), and
 * its time-weighted occupancy vector is the characterization bench's
 * per-trace fingerprint.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace specontext {
namespace obs {

class TimeseriesSampler;

/** What bound the fleet during a window. */
enum class Regime : uint8_t {
    Idle,
    WarmupBound,
    KvBound,
    PrefillBound,
    CacheBound,
    SchedulerBound,
    DecodeBound,
};

constexpr size_t kRegimeCount = 7;

/** Stable lowercase name of a regime (export schema). */
const char *regimeName(Regime r);

/** Classifier thresholds. */
struct RegimeConfig
{
    /** prefill-bound when admitted prefill tokens exceed this multiple
     *  of generated tokens in the window. */
    double prefill_dominance = 4.0;
    /** cache-bound when prefix-hit tokens reach this share of all
     *  admitted context tokens (hits + charged prefill). */
    double cache_hit_share = 0.5;
    /** scheduler-bound when the end-of-window backlog exceeds this
     *  multiple of the in-flight count (at least one queued). */
    double scheduler_backlog = 1.0;
};

/** Per-window evidence the label was derived from (kept on the window
 *  so a CSV row is auditable without re-running the classifier). */
struct RegimeSignals
{
    /** Counter deltas over the window, summed across replicas. */
    int64_t preemptions = 0;
    int64_t prefill_tokens = 0;
    int64_t generated_tokens = 0;
    int64_t prefix_hit_tokens = 0;
    /** Gauges at the window's end. */
    int64_t queue_depth = 0;
    int64_t in_flight = 0;
    int64_t warming_replicas = 0;
};

/** One classified control interval [t_start, t_end). */
struct RegimeWindow
{
    double t_start_seconds = 0.0;
    double t_end_seconds = 0.0;
    Regime regime = Regime::Idle;
    RegimeSignals signals;
};

/** The fleet's regime timeline plus its time-weighted occupancy. */
struct RegimeTimeline
{
    std::vector<RegimeWindow> windows;
    /** Share of total_seconds spent in each regime (indexed by
     *  Regime); sums to 1 when total_seconds > 0. */
    double occupancy[kRegimeCount] = {};
    double total_seconds = 0.0;

    /** Highest-occupancy regime (first wins ties); Idle when empty. */
    Regime dominantRegime() const;
};

/** The priority ladder over one window's signals (documented above);
 *  exposed so tests can pin it against hand-built signal sets. */
Regime classifyWindow(const RegimeSignals &s, const RegimeConfig &cfg);

/**
 * Classify every consecutive pair of sampler rows as one window:
 * counter deltas between the rows, gauges from the closing row.
 * Column roles are recovered from the registry's names — per-replica
 * `replica<N>.metric` slots are summed, `cluster.warming_replicas`
 * (elastic fleets only) is read directly; absent columns contribute 0,
 * and rows recorded before a slot registered pad with 0 (the CSV
 * exporter's convention). Fewer than two rows yield an empty timeline.
 */
RegimeTimeline classifyRegimes(const TimeseriesSampler &sampler,
                               const RegimeConfig &cfg = {});

/** Write one CSV row per window: t_start,t_end,regime + the signal
 *  columns. Returns false (after printing why) when the file cannot
 *  be opened. */
bool writeRegimeCsv(const RegimeTimeline &timeline,
                    const std::string &path);

} // namespace obs
} // namespace specontext
