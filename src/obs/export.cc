#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "obs/counters.h"
#include "obs/json.h"
#include "obs/regime.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace specontext {
namespace obs {

namespace {

/** Semantic names of the a/b payload fields (trace viewers show them
 *  in the args pane; "a"/"b" would be unreadable there). */
void
eventArgNames(EventType t, const char *&a, const char *&b)
{
    switch (t) {
      case EventType::Enqueue:
      case EventType::Reject:
        a = "prompt_len";
        b = "gen_len";
        return;
      case EventType::Admit:
        a = "cached_tokens";
        b = "context_tokens";
        return;
      case EventType::PrefillStart:
      case EventType::PrefillEnd:
        a = "prefill_tokens";
        b = "batch_size";
        return;
      case EventType::DecodeStep:
        a = "batch_size";
        b = "kv_tokens";
        return;
      case EventType::Preempt:
        a = "generated";
        b = "preemptions";
        return;
      case EventType::Restore:
        a = "recompute_tokens";
        b = "cached_tokens";
        return;
      case EventType::Complete:
        a = "gen_len";
        b = "preemptions";
        return;
      case EventType::RouterPlace:
        a = "prompt_len";
        b = "policy";
        return;
      case EventType::PrefixHit:
        a = "hit_tokens";
        b = "prompt_len";
        return;
      case EventType::PrefixInsert:
      case EventType::PrefixEvict:
        a = "tokens";
        b = "resident_tokens";
        return;
      case EventType::KvClamp:
        a = "working_budget_bytes";
        b = "configured_budget_bytes";
        return;
      case EventType::FleetScale:
        a = "scale_action";
        b = "live_replicas";
        return;
    }
    a = "a";
    b = "b";
}

/** Lane (Chrome tid) of an event; component-level events with no
 *  replica share one out-of-band "fleet" lane. */
int64_t
laneOf(const TraceEvent &e)
{
    return e.replica >= 0 ? e.replica : -1;
}

std::string
argsJson(const TraceEvent &e)
{
    const char *an = "a";
    const char *bn = "b";
    eventArgNames(e.type, an, bn);
    JsonRow args;
    if (e.request >= 0)
        args.num("request", e.request);
    args.num(an, e.a).num(bn, e.b);
    return args.render();
}

bool
writeLines(const std::string &path, const std::string &head,
           const std::vector<std::string> &lines,
           const std::string &tail)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::printf("cannot write %s\n", path.c_str());
        return false;
    }
    std::fputs(head.c_str(), f);
    for (size_t i = 0; i < lines.size(); ++i) {
        std::fprintf(f, "    %s%s\n", lines[i].c_str(),
                     i + 1 < lines.size() ? "," : "");
    }
    std::fputs(tail.c_str(), f);
    std::fclose(f);
    return true;
}

} // namespace

bool
writeChromeTrace(const Trace &trace, const std::string &path,
                 const std::vector<std::string> &lane_names,
                 const RegimeTimeline *regimes)
{
    const std::vector<TraceEvent> events = trace.snapshot();
    std::vector<std::string> lines;
    lines.reserve(events.size() * 2 + 8);

    // Lane metadata: name every replica lane that appears (Perfetto
    // sorts lanes by tid, so replica order is preserved). The ring-
    // wrap marker needs the fleet lane even when no fleet-level event
    // survived; the regime overlay gets its own out-of-band lane.
    std::set<int64_t> lanes;
    for (const TraceEvent &e : events)
        lanes.insert(laneOf(e));
    if (trace.dropped() > 0)
        lanes.insert(-1);
    if (regimes && !regimes->windows.empty())
        lanes.insert(-2);
    for (const int64_t lane : lanes) {
        std::string label;
        if (lane == -2) {
            label = "fleet regime";
        } else if (lane < 0) {
            label = "fleet";
        } else if (static_cast<size_t>(lane) < lane_names.size()) {
            label = lane_names[static_cast<size_t>(lane)];
        } else {
            label = "replica" + std::to_string(lane);
        }
        JsonRow name_args;
        name_args.str("name", label);
        JsonRow meta;
        meta.str("name", "thread_name").str("ph", "M");
        meta.num("pid", static_cast<int64_t>(0)).num("tid", lane);
        meta.raw("args", name_args.render());
        lines.push_back(meta.render());
    }

    // Ring-wrap marker: the overwritten events all precede the
    // earliest retained one (the ring drops oldest-first), so the
    // truncated range is [0, min retained t]. Rendering it as an
    // explicit slice keeps a wrapped export from looking complete.
    if (trace.dropped() > 0) {
        double min_t = 0.0;
        for (size_t i = 0; i < events.size(); ++i)
            min_t = i == 0 ? events[i].t_seconds
                           : std::min(min_t, events[i].t_seconds);
        JsonRow args;
        args.num("events_lost", static_cast<int64_t>(trace.dropped()));
        JsonRow row;
        row.str("name",
                "ring wrapped, " + std::to_string(trace.dropped()) +
                    " events lost")
            .str("cat", "truncated")
            .str("ph", "X");
        row.num("ts", 0.0, "%.3f");
        row.num("dur", min_t * 1e6, "%.3f");
        row.num("pid", static_cast<int64_t>(0))
            .num("tid", static_cast<int64_t>(-1));
        row.raw("args", args.render());
        lines.push_back(row.render());
    }

    // Regime overlay lane: one slice per run of consecutive equal-
    // regime windows (counter deltas summed over the run, gauges from
    // its closing window).
    if (regimes) {
        const std::vector<RegimeWindow> &ws = regimes->windows;
        for (size_t i = 0; i < ws.size();) {
            size_t j = i;
            RegimeSignals agg = ws[i].signals;
            while (j + 1 < ws.size() &&
                   ws[j + 1].regime == ws[i].regime) {
                ++j;
                agg.preemptions += ws[j].signals.preemptions;
                agg.prefill_tokens += ws[j].signals.prefill_tokens;
                agg.generated_tokens += ws[j].signals.generated_tokens;
                agg.prefix_hit_tokens +=
                    ws[j].signals.prefix_hit_tokens;
                agg.queue_depth = ws[j].signals.queue_depth;
                agg.in_flight = ws[j].signals.in_flight;
                agg.warming_replicas = ws[j].signals.warming_replicas;
            }
            JsonRow args;
            args.num("preemptions", agg.preemptions)
                .num("prefill_tokens", agg.prefill_tokens)
                .num("generated_tokens", agg.generated_tokens)
                .num("prefix_hit_tokens", agg.prefix_hit_tokens)
                .num("queue_depth", agg.queue_depth)
                .num("in_flight", agg.in_flight)
                .num("warming_replicas", agg.warming_replicas);
            JsonRow row;
            row.str("name", regimeName(ws[i].regime))
                .str("cat", "regime")
                .str("ph", "X");
            row.num("ts", ws[i].t_start_seconds * 1e6, "%.3f");
            row.num("dur",
                    (ws[j].t_end_seconds - ws[i].t_start_seconds) * 1e6,
                    "%.3f");
            row.num("pid", static_cast<int64_t>(0))
                .num("tid", static_cast<int64_t>(-2));
            row.raw("args", args.render());
            lines.push_back(row.render());
            i = j + 1;
        }
    }

    // Duration reconstruction: request residency (Admit/Restore ->
    // Preempt/Complete) and prefill (PrefillStart -> PrefillEnd),
    // keyed per lane + request. Ring wrap-around can orphan an
    // endpoint; orphans are skipped rather than guessed at.
    using SpanKey = std::pair<int64_t, int64_t>; // lane, request
    std::map<SpanKey, double> open_run, open_prefill;
    auto emitSlice = [&](const std::string &name, const char *cat,
                         double start, double end, int64_t tid,
                         const TraceEvent &close) {
        JsonRow row;
        row.str("name", name).str("cat", cat).str("ph", "X");
        row.num("ts", start * 1e6, "%.3f");
        row.num("dur", (end - start) * 1e6, "%.3f");
        row.num("pid", static_cast<int64_t>(0)).num("tid", tid);
        row.raw("args", argsJson(close));
        lines.push_back(row.render());
    };

    for (const TraceEvent &e : events) {
        const int64_t lane = laneOf(e);
        const SpanKey key{lane, e.request};
        switch (e.type) {
          case EventType::Admit:
          case EventType::Restore:
            open_run[key] = e.t_seconds;
            break;
          case EventType::Preempt:
          case EventType::Complete: {
            const auto it = open_run.find(key);
            if (it != open_run.end()) {
                emitSlice("req " + std::to_string(e.request),
                          e.type == EventType::Preempt ? "preempted"
                                                       : "run",
                          it->second, e.t_seconds, lane, e);
                open_run.erase(it);
            }
            break;
          }
          case EventType::PrefillStart:
            open_prefill[key] = e.t_seconds;
            break;
          case EventType::PrefillEnd: {
            const auto it = open_prefill.find(key);
            if (it != open_prefill.end()) {
                emitSlice("prefill req " + std::to_string(e.request),
                          "prefill", it->second, e.t_seconds, lane, e);
                open_prefill.erase(it);
            }
            break;
          }
          default: break;
        }
        // Every event also lands as an instant marker, so the raw
        // stream is visible (and greppable by name) alongside the
        // reconstructed slices.
        JsonRow row;
        row.str("name", eventTypeName(e.type)).str("ph", "i");
        row.str("s", "t");
        row.num("ts", e.t_seconds * 1e6, "%.3f");
        row.num("pid", static_cast<int64_t>(0)).num("tid", lane);
        row.raw("args", argsJson(e));
        lines.push_back(row.render());
    }

    JsonRow summary;
    summary.num("emitted", static_cast<int64_t>(trace.emitted()));
    summary.num("dropped", static_cast<int64_t>(trace.dropped()));
    const bool ok = writeLines(
        path,
        "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": " +
            summary.render() + ",\n  \"traceEvents\": [\n",
        lines, "  ]\n}\n");
    if (ok)
        std::printf("wrote %s (%zu events, %llu dropped)\n",
                    path.c_str(), events.size(),
                    static_cast<unsigned long long>(trace.dropped()));
    return ok;
}

bool
writeCountersJson(const CounterRegistry &registry,
                  const std::string &path)
{
    std::vector<std::string> lines;
    for (const CounterRegistry::Entry &e : registry.snapshot()) {
        JsonRow row;
        row.str("name", e.name)
            .str("kind", e.is_gauge ? "gauge" : "counter")
            .num("value", e.value);
        lines.push_back(row.render());
    }
    const bool ok =
        writeLines(path, "{\n  \"counters\": [\n", lines, "  ]\n}\n");
    if (ok)
        std::printf("wrote %s (%zu slots)\n", path.c_str(),
                    registry.size());
    return ok;
}

bool
writeTimeseriesCsv(const TimeseriesSampler &sampler,
                   const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::printf("cannot write %s\n", path.c_str());
        return false;
    }
    const std::vector<std::string> &names =
        sampler.registry().names();
    std::fputs("t_seconds", f);
    for (const std::string &n : names)
        std::fprintf(f, ",%s", n.c_str());
    std::fputc('\n', f);
    for (const SamplePoint &p : sampler.samples()) {
        std::fprintf(f, "%.6f", p.t_seconds);
        for (size_t i = 0; i < names.size(); ++i) {
            const int64_t v =
                i < p.values.size() ? p.values[i] : 0;
            std::fprintf(f, ",%lld", static_cast<long long>(v));
        }
        std::fputc('\n', f);
    }
    std::fclose(f);
    std::printf("wrote %s (%zu rows x %zu columns)\n", path.c_str(),
                sampler.samples().size(), names.size());
    return true;
}

} // namespace obs
} // namespace specontext
