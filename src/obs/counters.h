/**
 * @file
 * Always-on component counters: a string-keyed registry of monotonic
 * counters and gauges that every layer of the serving stack publishes
 * into (SESC's ThreadStats is the model — resolve a name to a slot
 * once at wiring time, then bump a plain int64 on the hot path).
 *
 * Names follow the `component.metric` / `replica<N>.metric` convention
 * documented in README's Observability section; snapshot() is cheap
 * and callable mid-run, which is exactly the feed a future SLO-driven
 * autoscaler polls (arrival rate, queue depth, live KV occupancy).
 *
 * Counters are *monotonic* (add only); gauges are set to the current
 * level. Both live in one slot table so one snapshot sees a coherent
 * view. Not thread-safe (single-threaded simulator).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace specontext {
namespace obs {

/** String-keyed slot table of counters and gauges. */
class CounterRegistry
{
  public:
    /** Stable slot index; resolve once, bump forever. */
    using Handle = size_t;

    /** Get-or-create the monotonic counter `name`.
     *  @throws std::invalid_argument when `name` exists as a gauge. */
    Handle counter(const std::string &name);

    /** Get-or-create the gauge `name`.
     *  @throws std::invalid_argument when `name` exists as a counter. */
    Handle gauge(const std::string &name);

    /**
     * Read-side accessor: the current level of gauge `h`. This is the
     * cheap polling path a control loop (the autoscale controller)
     * takes each tick — no snapshot(), no export round-trip, no name
     * lookup after the handle is resolved once.
     * @throws std::invalid_argument when `h` names a counter (read
     * those through value()); std::out_of_range on a bad handle.
     */
    int64_t gauge(Handle h) const;

    /** Bump a slot (counters; gauges accept deltas too). */
    void add(Handle h, int64_t delta) { values_[h] += delta; }

    /** Set a slot to its current level (gauges). */
    void set(Handle h, int64_t value) { values_[h] = value; }

    int64_t value(Handle h) const { return values_[h]; }

    /** Value of `name`; 0 when the slot does not exist (absent and
     *  never-bumped counters read the same — both mean "nothing
     *  happened"). */
    int64_t valueOf(const std::string &name) const;

    /** Registered slots. */
    size_t size() const { return values_.size(); }

    /** Slot names in registration order (the time-series columns). */
    const std::vector<std::string> &names() const { return names_; }

    /** True when slot `h` is a gauge. */
    bool isGauge(Handle h) const { return is_gauge_[h]; }

    struct Entry
    {
        std::string name;
        int64_t value = 0;
        bool is_gauge = false;
    };

    /** Coherent mid-run view of every slot, sorted by name. */
    std::vector<Entry> snapshot() const;

    /** Current values in registration order (the sampler's row). */
    const std::vector<int64_t> &values() const { return values_; }

  private:
    Handle getOrCreate(const std::string &name, bool is_gauge);

    std::unordered_map<std::string, Handle> index_;
    std::vector<std::string> names_;
    std::vector<int64_t> values_;
    std::vector<bool> is_gauge_;
};

} // namespace obs
} // namespace specontext
