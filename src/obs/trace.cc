#include "obs/trace.h"

#include <stdexcept>

namespace specontext {
namespace obs {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::Enqueue: return "Enqueue";
      case EventType::Admit: return "Admit";
      case EventType::PrefillStart: return "PrefillStart";
      case EventType::PrefillEnd: return "PrefillEnd";
      case EventType::DecodeStep: return "DecodeStep";
      case EventType::Preempt: return "Preempt";
      case EventType::Restore: return "Restore";
      case EventType::Complete: return "Complete";
      case EventType::Reject: return "Reject";
      case EventType::RouterPlace: return "RouterPlace";
      case EventType::PrefixHit: return "PrefixHit";
      case EventType::PrefixInsert: return "PrefixInsert";
      case EventType::PrefixEvict: return "PrefixEvict";
      case EventType::KvClamp: return "KvClamp";
      case EventType::FleetScale: return "FleetScale";
    }
    return "?";
}

Trace::Trace(TraceConfig cfg) : cfg_(cfg)
{
    if (cfg_.capacity == 0)
        throw std::invalid_argument("Trace: zero capacity");
    ring_.reserve(cfg_.capacity);
}

std::vector<TraceEvent>
Trace::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
Trace::clear()
{
    ring_.clear();
    head_ = 0;
    emitted_ = 0;
}

} // namespace obs
} // namespace specontext
