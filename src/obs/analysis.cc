#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "obs/trace.h"

namespace specontext {
namespace obs {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::RouterGap: return "router_gap";
      case Phase::QueueWait: return "queue_wait";
      case Phase::Prefill: return "prefill";
      case Phase::PreemptStall: return "preempt_stall";
      case Phase::RestoreRecompute: return "restore_recompute";
      case Phase::Decode: return "decode";
    }
    return "unknown";
}

const char *
blameMetricName(BlameMetric m)
{
    return m == BlameMetric::E2E ? "e2e" : "ttft";
}

Phase
PhaseBreakdown::dominant() const
{
    size_t best = 0;
    for (size_t i = 1; i < kPhaseCount; ++i)
        if (seconds[i] > seconds[best])
            best = i;
    return static_cast<Phase>(best);
}

namespace {

/**
 * Solve fl(pre-fold + decode) == total for the Decode slot alone: two
 * Newton-style corrections land within one ulp of the fixed point (but
 * can 2-cycle when adjacent residuals straddle `total`), then a tail
 * walks representable values one ulp at a time. phaseSum() is monotone
 * in the residual, so once the error changes sign without reaching
 * zero no exact residual exists for this prefix fold.
 */
bool
solveDecodeResidual(PhaseBreakdown &p, double total)
{
    p[Phase::Decode] = 0.0;
    p[Phase::Decode] = total - p.phaseSum();
    for (int i = 0; i < 2; ++i) {
        const double err = total - p.phaseSum();
        if (err == 0.0)
            return true;
        p[Phase::Decode] += err;
    }
    double err = total - p.phaseSum();
    if (err == 0.0)
        return true;
    const bool up = err > 0.0;
    const double limit = up ? std::numeric_limits<double>::infinity()
                            : -std::numeric_limits<double>::infinity();
    for (int i = 0; i < 8; ++i) {
        p[Phase::Decode] = std::nextafter(p[Phase::Decode], limit);
        err = total - p.phaseSum();
        if (err == 0.0)
            return true;
        if ((err > 0.0) != up)
            return false; // crossed `total`: no exact residual exists
    }
    return false;
}

/**
 * Close the accounting identity: set the Decode phase so the fixed
 * left-to-right fold equals `total` *bitwise*. The decode residual
 * alone almost always suffices, but round-to-nearest-even can strand
 * the fold: when the two adjacent residuals put the real sum exactly
 * on the tie points around an odd-mantissa `total`, both ties round
 * *away* and no representable decode closes the identity. Largest-
 * remainder style, the fallback then re-rounds one earlier nonzero
 * phase boundary just enough to shift the prefix fold — a phase much
 * smaller than the fold needs several ulps before the fold's own
 * rounding registers the nudge, and the largest phase is always
 * within three binades of the fold, so 32 steps provably move it —
 * then re-derives the residual. The shift stays sub-picosecond,
 * within the phase's own difference-rounding error. A breakdown
 * nothing closes is reported, never fudged.
 */
bool
closeResidual(PhaseBreakdown &p, double total)
{
    if (!std::isfinite(total))
        return false;
    if (solveDecodeResidual(p, total))
        return true;
    for (int i = static_cast<int>(Phase::RestoreRecompute); i >= 0; --i) {
        const double orig = p.seconds[i];
        if (!(orig > 0.0))
            continue; // a zero phase cannot shift the prefix fold
        for (const double limit :
             {std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity()}) {
            p.seconds[i] = orig;
            for (int step = 0; step < 32; ++step) {
                p.seconds[i] = std::nextafter(p.seconds[i], limit);
                if (!(p.seconds[i] > 0.0))
                    break; // never walk a phase to zero or below
                if (solveDecodeResidual(p, total))
                    return true;
            }
        }
        p.seconds[i] = orig;
    }
    return false;
}

/** Per-request replay state while walking the ring. */
struct Builder
{
    RequestTimeline tl;
    bool has_enqueue = false;
    bool has_route = false;
    bool has_complete = false;
    bool rejected = false;
    /** First retained event was mid-lifecycle: the ring overwrote the
     *  request's head (retained events are a suffix of emission
     *  order, so a missing Enqueue is proof of truncation). */
    bool orphan = false;

    int64_t preempt_events = 0;
    int64_t restore_events = 0;
    int64_t complete_preempts = -1;
    int64_t complete_gen = -1;

    double last_preempt_t = -1.0;
    double pending_prefill_start = -1.0;
    bool has_pending_prefill = false;
    bool pending_is_restore = false;
    bool first_prefill_done = false;
    double first_prefill_start = -1.0;
    double first_prefill_end = -1.0;

    /** Stall/recompute accumulators (plain += in event order, so the
     *  replay is deterministic); the _tt pair only accumulates while
     *  the first token is still pending (TTFT-window share). */
    double preempt_stall = 0.0;
    double restore_recompute = 0.0;
    double preempt_stall_tt = 0.0;
    double restore_recompute_tt = 0.0;
};

void
finalize(Builder &b, TraceAnalysis &out)
{
    RequestTimeline &tl = b.tl;
    auto fail = [&](const char *why) {
        tl.complete = false;
        tl.incomplete_reason = why;
        out.incomplete.push_back(std::move(tl));
    };

    if (b.orphan || !b.has_enqueue)
        return fail("ring wrapped: lifecycle head overwritten");
    if (b.rejected) {
        ++out.rejected;
        return;
    }
    if (!b.has_complete)
        return fail("no complete event (in flight at snapshot)");
    if (tl.admit_seconds < 0.0 || !b.first_prefill_done)
        return fail("missing admission/prefill events");
    if (b.has_pending_prefill)
        return fail("unmatched prefill start");
    if (b.preempt_events != b.restore_events)
        return fail("preempt/restore pairing mismatch");
    if (b.complete_preempts != b.preempt_events)
        return fail("preemption count mismatch vs complete event");
    if (b.complete_gen >= 0 && tl.gen_len > 0 &&
        b.complete_gen != tl.gen_len)
        return fail("generation length mismatch vs enqueue event");
    if (tl.first_token_seconds < 0.0)
        return fail("no decode step after prefill");

    tl.arrival_seconds =
        b.has_route ? tl.arrival_seconds : tl.enqueue_seconds;
    tl.preemptions = b.preempt_events;

    PhaseBreakdown &p = tl.phases;
    p[Phase::RouterGap] = tl.enqueue_seconds - tl.arrival_seconds;
    p[Phase::QueueWait] = tl.admit_seconds - tl.enqueue_seconds;
    p[Phase::Prefill] = b.first_prefill_end - b.first_prefill_start;
    p[Phase::PreemptStall] = b.preempt_stall;
    p[Phase::RestoreRecompute] = b.restore_recompute;
    if (!closeResidual(p, tl.e2eSeconds()))
        return fail("e2e accounting identity did not close");

    PhaseBreakdown &t = tl.ttft_phases;
    t[Phase::RouterGap] = p[Phase::RouterGap];
    t[Phase::QueueWait] = p[Phase::QueueWait];
    t[Phase::Prefill] = p[Phase::Prefill];
    t[Phase::PreemptStall] = b.preempt_stall_tt;
    t[Phase::RestoreRecompute] = b.restore_recompute_tt;
    if (!closeResidual(t, tl.ttftSeconds()))
        return fail("ttft accounting identity did not close");

    tl.complete = true;
    out.complete.push_back(std::move(tl));
}

} // namespace

TraceAnalysis
analyzeTrace(const Trace &trace)
{
    TraceAnalysis out;
    out.dropped_events = trace.dropped();

    std::unordered_map<int64_t, Builder> builders;
    // Requests whose prefill finished but whose first decode round
    // hasn't landed yet, per replica: the next DecodeStep event on
    // that replica stamps their first token (exactly where the engine
    // stamps first_token_seconds).
    std::unordered_map<int32_t, std::vector<int64_t>> awaiting;

    auto builderFor = [&](const TraceEvent &e,
                          bool lifecycle_head) -> Builder & {
        auto it = builders.find(e.request);
        if (it == builders.end()) {
            Builder b;
            b.tl.request = e.request;
            b.tl.replica = e.replica;
            b.orphan = !lifecycle_head;
            it = builders.emplace(e.request, std::move(b)).first;
        }
        return it->second;
    };

    for (const TraceEvent &e : trace.snapshot()) {
        if (e.request < 0) {
            if (e.type == EventType::DecodeStep) {
                const auto it = awaiting.find(e.replica);
                if (it == awaiting.end())
                    continue;
                for (const int64_t id : it->second) {
                    Builder &b = builders.find(id)->second;
                    if (b.tl.first_token_seconds < 0.0)
                        b.tl.first_token_seconds = e.t_seconds;
                }
                it->second.clear();
            }
            continue; // prefix/kv/fleet events carry no request
        }
        switch (e.type) {
          case EventType::RouterPlace: {
            Builder &b = builderFor(e, true);
            b.has_route = true;
            b.tl.arrival_seconds = e.t_seconds;
            b.tl.replica = e.replica;
            if (b.tl.prompt_len == 0)
                b.tl.prompt_len = e.a;
            break;
          }
          case EventType::Enqueue: {
            Builder &b = builderFor(e, true);
            b.has_enqueue = true;
            b.tl.enqueue_seconds = e.t_seconds;
            b.tl.replica = e.replica;
            b.tl.prompt_len = e.a;
            b.tl.gen_len = e.b;
            break;
          }
          case EventType::Reject: {
            Builder &b = builderFor(e, false);
            b.rejected = true;
            break;
          }
          case EventType::Admit: {
            Builder &b = builderFor(e, false);
            if (b.tl.admit_seconds < 0.0) {
                b.tl.admit_seconds = e.t_seconds;
                b.tl.first_hit_tokens = e.a;
            }
            b.tl.prefix_hit_tokens += e.a;
            b.pending_is_restore = false;
            break;
          }
          case EventType::Restore: {
            Builder &b = builderFor(e, false);
            ++b.restore_events;
            if (b.last_preempt_t >= 0.0) {
                const double stall = e.t_seconds - b.last_preempt_t;
                b.preempt_stall += stall;
                if (b.tl.first_token_seconds < 0.0)
                    b.preempt_stall_tt += stall;
                b.last_preempt_t = -1.0;
            }
            b.tl.prefix_hit_tokens += e.b;
            b.pending_is_restore = true;
            break;
          }
          case EventType::PrefillStart: {
            Builder &b = builderFor(e, false);
            b.pending_prefill_start = e.t_seconds;
            b.has_pending_prefill = true;
            break;
          }
          case EventType::PrefillEnd: {
            Builder &b = builderFor(e, false);
            if (b.has_pending_prefill) {
                b.has_pending_prefill = false;
                if (b.pending_is_restore) {
                    const double rc =
                        e.t_seconds - b.pending_prefill_start;
                    b.restore_recompute += rc;
                    if (b.tl.first_token_seconds < 0.0)
                        b.restore_recompute_tt += rc;
                } else if (!b.first_prefill_done) {
                    b.first_prefill_done = true;
                    b.first_prefill_start = b.pending_prefill_start;
                    b.first_prefill_end = e.t_seconds;
                }
            }
            if (b.tl.first_token_seconds < 0.0)
                awaiting[e.replica].push_back(e.request);
            break;
          }
          case EventType::Preempt: {
            Builder &b = builderFor(e, false);
            ++b.preempt_events;
            b.last_preempt_t = e.t_seconds;
            auto it = awaiting.find(e.replica);
            if (it != awaiting.end()) {
                auto &v = it->second;
                v.erase(std::remove(v.begin(), v.end(), e.request),
                        v.end());
            }
            break;
          }
          case EventType::Complete: {
            Builder &b = builderFor(e, false);
            b.has_complete = true;
            b.tl.finish_seconds = e.t_seconds;
            b.complete_gen = e.a;
            b.complete_preempts = e.b;
            break;
          }
          default: break; // prefix/kv events are replica-level detail
        }
    }

    for (auto &kv : builders)
        finalize(kv.second, out);

    auto byId = [](const RequestTimeline &a, const RequestTimeline &b) {
        return a.request < b.request;
    };
    std::sort(out.complete.begin(), out.complete.end(), byId);
    std::sort(out.incomplete.begin(), out.incomplete.end(), byId);
    return out;
}

double
percentileSeconds(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        std::ceil(pct / 100.0 * static_cast<double>(values.size()));
    const size_t idx = static_cast<size_t>(std::max(
        1.0, std::min(rank, static_cast<double>(values.size()))));
    return values[idx - 1];
}

namespace {

double
metricOf(const RequestTimeline &tl, BlameMetric m)
{
    return m == BlameMetric::E2E ? tl.e2eSeconds() : tl.ttftSeconds();
}

const PhaseBreakdown &
breakdownOf(const RequestTimeline &tl, BlameMetric m)
{
    return m == BlameMetric::E2E ? tl.phases : tl.ttft_phases;
}

BlameRow
buildRow(const std::string &bucket,
         std::vector<const RequestTimeline *> members, BlameMetric m)
{
    BlameRow row;
    row.bucket = bucket;
    row.count = members.size();
    if (members.empty())
        return row;
    std::sort(members.begin(), members.end(),
              [&](const RequestTimeline *a, const RequestTimeline *b) {
                  const double ma = metricOf(*a, m);
                  const double mb = metricOf(*b, m);
                  if (ma != mb)
                      return ma < mb;
                  return a->request < b->request; // deterministic ties
              });
    auto atPct = [&](double pct) -> const RequestTimeline & {
        const double rank = std::ceil(
            pct / 100.0 * static_cast<double>(members.size()));
        const size_t idx = static_cast<size_t>(std::max(
            1.0,
            std::min(rank, static_cast<double>(members.size()))));
        return *members[idx - 1];
    };
    const RequestTimeline &p50 = atPct(50.0);
    const RequestTimeline &p99 = atPct(99.0);
    row.p50_seconds = metricOf(p50, m);
    row.p99_seconds = metricOf(p99, m);
    row.dominant_p50 = breakdownOf(p50, m).dominant();
    row.dominant_p99 = breakdownOf(p99, m).dominant();
    for (const RequestTimeline *tl : members) {
        const double total = metricOf(*tl, m);
        if (!(total > 0.0))
            continue;
        const PhaseBreakdown &p = breakdownOf(*tl, m);
        for (size_t i = 0; i < kPhaseCount; ++i)
            row.mean_share[i] += p.seconds[i] / total;
    }
    for (size_t i = 0; i < kPhaseCount; ++i)
        row.mean_share[i] /= static_cast<double>(members.size());
    return row;
}

} // namespace

BlameTable
blameTable(const std::vector<RequestTimeline> &timelines,
           BlameMetric metric)
{
    BlameTable table;
    table.metric = metric;

    std::vector<const RequestTimeline *> all;
    all.reserve(timelines.size());
    for (const RequestTimeline &tl : timelines)
        all.push_back(&tl);
    table.rows.push_back(buildRow("all", all, metric));

    struct Bucket
    {
        const char *name;
        bool (*match)(const RequestTimeline &);
    };
    const Bucket buckets[] = {
        {"preempt=0",
         [](const RequestTimeline &t) { return t.preemptions == 0; }},
        {"preempt=1",
         [](const RequestTimeline &t) { return t.preemptions == 1; }},
        {"preempt>=2",
         [](const RequestTimeline &t) { return t.preemptions >= 2; }},
        {"prefix=none",
         [](const RequestTimeline &t) {
             return t.first_hit_tokens == 0;
         }},
        {"prefix=low",
         [](const RequestTimeline &t) {
             return t.first_hit_tokens > 0 &&
                    t.first_hit_tokens * 2 < t.prompt_len;
         }},
        {"prefix=high",
         [](const RequestTimeline &t) {
             return t.first_hit_tokens > 0 &&
                    t.first_hit_tokens * 2 >= t.prompt_len;
         }},
    };
    for (const Bucket &bk : buckets) {
        std::vector<const RequestTimeline *> members;
        for (const RequestTimeline &tl : timelines)
            if (bk.match(tl))
                members.push_back(&tl);
        if (!members.empty())
            table.rows.push_back(
                buildRow(bk.name, std::move(members), metric));
    }
    return table;
}

std::vector<double>
phaseShareSignature(const std::vector<RequestTimeline> &timelines,
                    BlameMetric metric)
{
    std::vector<double> sig(kPhaseCount, 0.0);
    if (timelines.empty())
        return sig;
    for (const RequestTimeline &tl : timelines) {
        const double total = metricOf(tl, metric);
        if (!(total > 0.0))
            continue;
        const PhaseBreakdown &p = breakdownOf(tl, metric);
        for (size_t i = 0; i < kPhaseCount; ++i)
            sig[i] += p.seconds[i] / total;
    }
    for (size_t i = 0; i < kPhaseCount; ++i)
        sig[i] /= static_cast<double>(timelines.size());
    return sig;
}

} // namespace obs
} // namespace specontext
