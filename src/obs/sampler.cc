#include "obs/sampler.h"

#include <stdexcept>

#include "obs/counters.h"

namespace specontext {
namespace obs {

TimeseriesSampler::TimeseriesSampler(const CounterRegistry *registry,
                                     TimeseriesSamplerConfig cfg)
    : registry_(registry), cfg_(cfg)
{
    if (!registry_)
        throw std::invalid_argument("TimeseriesSampler: null registry");
    if (!(cfg_.interval_seconds > 0.0))
        throw std::invalid_argument(
            "TimeseriesSampler: non-positive interval");
}

void
TimeseriesSampler::sample(double now_seconds)
{
    while (next_sample_ <= now_seconds) {
        if (samples_.size() < cfg_.max_samples) {
            SamplePoint p;
            p.t_seconds = next_sample_;
            p.values = registry_->values();
            samples_.push_back(std::move(p));
        } else {
            ++dropped_;
        }
        next_sample_ += cfg_.interval_seconds;
    }
}

void
TimeseriesSampler::flush(double now_seconds)
{
    sample(now_seconds);
    if (!samples_.empty() &&
        samples_.back().t_seconds >= now_seconds)
        return; // now coincides with (or precedes) the last crossing
    if (samples_.size() >= cfg_.max_samples) {
        ++dropped_;
        return;
    }
    SamplePoint p;
    p.t_seconds = now_seconds;
    p.values = registry_->values();
    samples_.push_back(std::move(p));
}

} // namespace obs
} // namespace specontext
