#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace specontext {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonRow &
JsonRow::field(const std::string &key, const std::string &rendered)
{
    if (!body_.empty())
        body_ += ", ";
    body_ += "\"" + jsonEscape(key) + "\": " + rendered;
    return *this;
}

JsonRow &
JsonRow::str(const std::string &key, const std::string &value)
{
    return field(key, "\"" + jsonEscape(value) + "\"");
}

JsonRow &
JsonRow::num(const std::string &key, int64_t value)
{
    return field(key, std::to_string(value));
}

JsonRow &
JsonRow::num(const std::string &key, double value, const char *fmt)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    return field(key, buf);
}

JsonRow &
JsonRow::boolean(const std::string &key, bool value)
{
    return field(key, value ? "true" : "false");
}

JsonRow &
JsonRow::raw(const std::string &key, const std::string &json)
{
    return field(key, json);
}

std::string
jsonNumberArray(const std::vector<double> &values, const char *fmt)
{
    std::string out = "[";
    char buf[64];
    for (size_t i = 0; i < values.size(); ++i) {
        std::snprintf(buf, sizeof(buf), fmt, values[i]);
        out += (i ? ", " : "") + std::string(buf);
    }
    return out + "]";
}

std::string
jsonNumberArray(const std::vector<int64_t> &values)
{
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i)
        out += (i ? ", " : "") + std::to_string(values[i]);
    return out + "]";
}

std::string
jsonStringArray(const std::vector<std::string> &values)
{
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i)
        out += (i ? ", " : "") + ("\"" + jsonEscape(values[i]) + "\"");
    return out + "]";
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent parser over a string view (RFC 8259 subset:
 *  exactly standard JSON, no extensions). */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;

    bool fail(const std::string &reason)
    {
        if (error_)
            *error_ = "offset " + std::to_string(pos_) + ": " + reason;
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool literal(const char *word, size_t n)
    {
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.object[key] = std::move(member);
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<size_t>(i)];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        pos_ += 4;
        return true;
    }

    /** UTF-8-encode a code point (no surrogate-pair recombination —
     *  the exporters never emit any; lone surrogates encode as-is). */
    void appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                appendUtf8(out, cp);
                break;
              }
              default: return fail("unknown escape character");
            }
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            const size_t before = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            return pos_ > before;
        };
        // Integer part: one zero, or a nonzero digit run (RFC 8259
        // forbids leading zeros).
        if (pos_ < text_.size() && text_[pos_] == '0') {
            ++pos_;
        } else if (!digits()) {
            return fail("expected number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("expected digits after decimal point");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("expected exponent digits");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
        return true;
    }
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string *error)
{
    out = JsonValue{};
    Parser p(text, error);
    return p.parseDocument(out);
}

} // namespace obs
} // namespace specontext
