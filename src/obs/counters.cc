#include "obs/counters.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace obs {

CounterRegistry::Handle
CounterRegistry::getOrCreate(const std::string &name, bool is_gauge)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        if (is_gauge_[it->second] != is_gauge)
            throw std::invalid_argument(
                "CounterRegistry: '" + name +
                "' already registered as a " +
                (is_gauge ? "counter" : "gauge"));
        return it->second;
    }
    const Handle h = values_.size();
    index_.emplace(name, h);
    names_.push_back(name);
    values_.push_back(0);
    is_gauge_.push_back(is_gauge);
    return h;
}

CounterRegistry::Handle
CounterRegistry::counter(const std::string &name)
{
    return getOrCreate(name, false);
}

CounterRegistry::Handle
CounterRegistry::gauge(const std::string &name)
{
    return getOrCreate(name, true);
}

int64_t
CounterRegistry::gauge(Handle h) const
{
    if (!is_gauge_.at(h))
        throw std::invalid_argument(
            "CounterRegistry: gauge(Handle) on counter '" + names_[h] +
            "' — read counters through value()");
    return values_[h];
}

int64_t
CounterRegistry::valueOf(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
}

std::vector<CounterRegistry::Entry>
CounterRegistry::snapshot() const
{
    std::vector<Entry> out;
    out.reserve(values_.size());
    for (size_t i = 0; i < values_.size(); ++i)
        out.push_back({names_[i], values_[i], is_gauge_[i] == true});
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace obs
} // namespace specontext
