#include "retrieval/shadow_kv.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/topk.h"

namespace specontext {
namespace retrieval {

float
QuantizedKeys::score(const float *query, int64_t pos) const
{
    const int8_t *kq = q.data() + pos * head_dim;
    const float scale = scales[pos];
    float s = 0.0f;
    for (int64_t i = 0; i < head_dim; ++i)
        s += query[i] * (scale * kq[i]);
    return s;
}

ShadowKVRetriever::ShadowKVRetriever(int64_t budget)
    : KVRetriever(budget)
{
}

void
ShadowKVRetriever::onPrefillComplete(const kv::KVCacheSet &cache,
                                     int64_t prompt_len)
{
    KVRetriever::onPrefillComplete(cache, prompt_len);
    kv_heads_ = cache.layer(0).kvHeads();
    stores_.clear();
    stores_.reserve(cache.layers() * kv_heads_);
    for (int64_t l = 0; l < cache.layers(); ++l) {
        const kv::LayerKVCache &lc = cache.layer(l);
        const int64_t hd = lc.headDim();
        for (int64_t h = 0; h < kv_heads_; ++h) {
            QuantizedKeys qk;
            qk.head_dim = hd;
            qk.q.resize(prompt_len * hd);
            qk.scales.resize(prompt_len);
            for (int64_t p = 0; p < prompt_len; ++p) {
                const float *key = lc.keyAt(p, h);
                float mx = 0.0f;
                for (int64_t i = 0; i < hd; ++i)
                    mx = std::max(mx, std::fabs(key[i]));
                const float scale = mx > 0.0f ? mx / 7.0f : 1.0f;
                qk.scales[p] = scale;
                for (int64_t i = 0; i < hd; ++i) {
                    const float v = key[i] / scale;
                    qk.q[p * hd + i] = static_cast<int8_t>(
                        std::lround(std::clamp(v, -7.0f, 7.0f)));
                }
            }
            stores_.push_back(std::move(qk));
        }
    }
}

const QuantizedKeys &
ShadowKVRetriever::quantized(int64_t layer, int64_t kv_head) const
{
    return stores_.at(layer * kv_heads_ + kv_head);
}

double
ShadowKVRetriever::meanQuantError(const kv::KVCacheSet &cache) const
{
    double err = 0.0;
    int64_t count = 0;
    for (int64_t l = 0; l < cache.layers(); ++l) {
        const kv::LayerKVCache &lc = cache.layer(l);
        for (int64_t h = 0; h < kv_heads_; ++h) {
            const QuantizedKeys &qk = quantized(l, h);
            for (int64_t p = 0; p < qk.tokens(); ++p) {
                const float *key = lc.keyAt(p, h);
                for (int64_t i = 0; i < qk.head_dim; ++i) {
                    const float deq =
                        qk.scales[p] * qk.q[p * qk.head_dim + i];
                    err += std::fabs(deq - key[i]);
                    ++count;
                }
            }
        }
    }
    return count == 0 ? 0.0 : err / count;
}

model::LayerSelection
ShadowKVRetriever::selectForLayer(int64_t layer, const Tensor &q,
                                  const kv::KVCacheSet &cache,
                                  int64_t ctx)
{
    ++stats_.select_calls;
    const int64_t kv_heads = cache.layer(layer).kvHeads();
    const int64_t group = q.dim(0) / kv_heads;
    const int64_t hd = q.dim(1);

    model::LayerSelection sel;
    sel.per_head.resize(kv_heads);
    const std::vector<int64_t> tail = retainedTail(ctx);

    for (int64_t kvh = 0; kvh < kv_heads; ++kvh) {
        const QuantizedKeys &qk = quantized(layer, kvh);
        const int64_t n = qk.tokens();
        std::vector<float> scores(n, -std::numeric_limits<float>::max());
        for (int64_t g = 0; g < group; ++g) {
            const float *qh = q.row(kvh * group + g);
            for (int64_t p = 0; p < n; ++p)
                scores[p] = std::max(scores[p], qk.score(qh, p));
        }
        stats_.score_flops += static_cast<double>(n) * group * hd * 2.0;

        std::vector<int64_t> &positions = sel.per_head[kvh];
        positions = topkIndices(scores, budget_);
        positions.insert(positions.end(), tail.begin(), tail.end());
        std::sort(positions.begin(), positions.end());
        stats_.selected_positions +=
            static_cast<int64_t>(positions.size());
    }
    return sel;
}

} // namespace retrieval
} // namespace specontext
