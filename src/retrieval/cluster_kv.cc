#include "retrieval/cluster_kv.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "tensor/topk.h"

namespace specontext {
namespace retrieval {

ClusterKVRetriever::ClusterKVRetriever(int64_t budget,
                                       int64_t avg_cluster_size,
                                       int64_t iterations)
    : KVRetriever(budget), avg_cluster_size_(avg_cluster_size),
      iterations_(iterations)
{
}

KeyClusters
ClusterKVRetriever::clusterOneHead(const kv::LayerKVCache &cache,
                                   int64_t head, int64_t prompt_len)
{
    const int64_t hd = cache.headDim();
    const int64_t n = prompt_len;
    const int64_t k =
        std::max<int64_t>(1, (n + avg_cluster_size_ - 1) /
                                 avg_cluster_size_);

    KeyClusters kc;
    kc.head_dim = hd;
    kc.centroids.assign(k * hd, 0.0f);
    std::vector<int64_t> assign(n, 0);

    // Deterministic init: evenly spaced keys become seeds.
    for (int64_t c = 0; c < k; ++c) {
        const int64_t pos = c * n / k;
        const float *key = cache.keyAt(pos, head);
        std::copy(key, key + hd, kc.centroids.data() + c * hd);
    }

    for (int64_t it = 0; it < iterations_; ++it) {
        // Assignment step.
        for (int64_t p = 0; p < n; ++p) {
            const float *key = cache.keyAt(p, head);
            float best = std::numeric_limits<float>::max();
            int64_t best_c = 0;
            for (int64_t c = 0; c < k; ++c) {
                const float *cen = kc.centroids.data() + c * hd;
                float d2 = 0.0f;
                for (int64_t i = 0; i < hd; ++i) {
                    const float diff = key[i] - cen[i];
                    d2 += diff * diff;
                }
                if (d2 < best) {
                    best = d2;
                    best_c = c;
                }
            }
            assign[p] = best_c;
        }
        preprocess_flops_ += 3.0 * n * k * hd;

        // Update step.
        std::vector<float> sums(k * hd, 0.0f);
        std::vector<int64_t> counts(k, 0);
        for (int64_t p = 0; p < n; ++p) {
            const float *key = cache.keyAt(p, head);
            float *s = sums.data() + assign[p] * hd;
            for (int64_t i = 0; i < hd; ++i)
                s[i] += key[i];
            ++counts[assign[p]];
        }
        for (int64_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // empty cluster keeps its old centroid
            float *cen = kc.centroids.data() + c * hd;
            for (int64_t i = 0; i < hd; ++i)
                cen[i] = sums[c * hd + i] / counts[c];
        }
    }

    kc.members.assign(k, {});
    for (int64_t p = 0; p < n; ++p)
        kc.members[assign[p]].push_back(p);
    return kc;
}

void
ClusterKVRetriever::onPrefillComplete(const kv::KVCacheSet &cache,
                                      int64_t prompt_len)
{
    KVRetriever::onPrefillComplete(cache, prompt_len);
    kv_heads_ = cache.layer(0).kvHeads();
    clusters_.clear();
    clusters_.reserve(cache.layers() * kv_heads_);
    for (int64_t l = 0; l < cache.layers(); ++l) {
        for (int64_t h = 0; h < kv_heads_; ++h)
            clusters_.push_back(
                clusterOneHead(cache.layer(l), h, prompt_len));
    }
}

const KeyClusters &
ClusterKVRetriever::clusters(int64_t layer, int64_t kv_head) const
{
    return clusters_.at(layer * kv_heads_ + kv_head);
}

model::LayerSelection
ClusterKVRetriever::selectForLayer(int64_t layer, const Tensor &q,
                                   const kv::KVCacheSet &cache,
                                   int64_t ctx)
{
    ++stats_.select_calls;
    const int64_t kv_heads = cache.layer(layer).kvHeads();
    const int64_t group = q.dim(0) / kv_heads;
    const int64_t hd = q.dim(1);

    model::LayerSelection sel;
    sel.per_head.resize(kv_heads);
    const std::vector<int64_t> tail = retainedTail(ctx);

    for (int64_t kvh = 0; kvh < kv_heads; ++kvh) {
        const KeyClusters &kc = clusters(layer, kvh);
        const int64_t k = kc.count();
        std::vector<float> scores(k, -std::numeric_limits<float>::max());
        for (int64_t g = 0; g < group; ++g) {
            const float *qh = q.row(kvh * group + g);
            for (int64_t c = 0; c < k; ++c) {
                scores[c] = std::max(
                    scores[c],
                    ops::dot(qh, kc.centroids.data() + c * hd, hd));
            }
        }
        stats_.score_flops += static_cast<double>(k) * group * hd * 2.0;

        // Recall whole clusters in descending score until the budget
        // is met.
        std::vector<int64_t> order(k);
        for (int64_t c = 0; c < k; ++c)
            order[c] = c;
        std::sort(order.begin(), order.end(),
                  [&scores](int64_t a, int64_t b) {
                      if (scores[a] != scores[b])
                          return scores[a] > scores[b];
                      return a < b;
                  });

        std::vector<int64_t> &positions = sel.per_head[kvh];
        for (int64_t c : order) {
            if (static_cast<int64_t>(positions.size()) >= budget_)
                break;
            const auto &m = kc.members[c];
            positions.insert(positions.end(), m.begin(), m.end());
        }
        positions.insert(positions.end(), tail.begin(), tail.end());
        std::sort(positions.begin(), positions.end());
        stats_.selected_positions +=
            static_cast<int64_t>(positions.size());
    }
    return sel;
}

} // namespace retrieval
} // namespace specontext
