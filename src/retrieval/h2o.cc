#include "retrieval/h2o.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace specontext {
namespace retrieval {

H2ORetriever::H2ORetriever(int64_t budget, int64_t recent_window)
    : KVRetriever(budget), recent_window_(recent_window)
{
}

void
H2ORetriever::onPrefillComplete(const kv::KVCacheSet &cache,
                                int64_t prompt_len)
{
    KVRetriever::onPrefillComplete(cache, prompt_len);
    kv_heads_ = cache.layer(0).kvHeads();
    states_.assign(cache.layers() * kv_heads_, HeavyHitterState());
    // Start by tracking the entire prompt; eviction trims it to the
    // budget as decoding proceeds.
    for (auto &s : states_) {
        for (int64_t p = 0; p < prompt_len; ++p)
            s.mass[p] = 0.0;
    }
}

const HeavyHitterState &
H2ORetriever::state(int64_t layer, int64_t kv_head) const
{
    return states_.at(layer * kv_heads_ + kv_head);
}

model::LayerSelection
H2ORetriever::selectForLayer(int64_t layer, const Tensor &q,
                             const kv::KVCacheSet &cache, int64_t ctx)
{
    ++stats_.select_calls;
    const kv::LayerKVCache &lc = cache.layer(layer);
    const int64_t kv_heads = lc.kvHeads();
    const int64_t group = q.dim(0) / kv_heads;
    const int64_t hd = q.dim(1);
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));

    model::LayerSelection sel;
    sel.per_head.resize(kv_heads);

    for (int64_t kvh = 0; kvh < kv_heads; ++kvh) {
        HeavyHitterState &st = states_.at(layer * kv_heads_ + kvh);
        // Admit any new (generated) positions not yet tracked.
        for (int64_t p = prompt_len_; p < ctx; ++p) {
            if (st.mass.find(p) == st.mass.end() &&
                !std::binary_search(st.evicted.begin(),
                                    st.evicted.end(), p)) {
                st.mass[p] = 0.0;
            }
        }

        // Score the tracked set with the current query (max over the
        // group's query heads) and accumulate softmaxed mass.
        std::vector<int64_t> tracked;
        tracked.reserve(st.mass.size());
        for (const auto &[p, m] : st.mass) {
            if (p < ctx)
                tracked.push_back(p);
        }
        std::sort(tracked.begin(), tracked.end());
        std::vector<float> scores(tracked.size(),
                                  -std::numeric_limits<float>::max());
        for (int64_t g = 0; g < group; ++g) {
            const float *qh = q.row(kvh * group + g);
            for (size_t i = 0; i < tracked.size(); ++i) {
                const float s =
                    ops::dot(qh, lc.keyAt(tracked[i], kvh), hd) *
                    inv_sqrt_d;
                scores[i] = std::max(scores[i], s);
            }
        }
        stats_.score_flops +=
            2.0 * static_cast<double>(tracked.size()) * group * hd;
        ops::softmaxInPlace(scores.data(),
                            static_cast<int64_t>(scores.size()));
        for (size_t i = 0; i < tracked.size(); ++i)
            st.mass[tracked[i]] += scores[i];

        // Evict lowest-mass positions beyond the budget, protecting
        // the recent window.
        if (static_cast<int64_t>(tracked.size()) > budget_) {
            std::vector<int64_t> evictable;
            for (int64_t p : tracked) {
                if (p < ctx - recent_window_)
                    evictable.push_back(p);
            }
            std::sort(evictable.begin(), evictable.end(),
                      [&st](int64_t a, int64_t b) {
                          if (st.mass[a] != st.mass[b])
                              return st.mass[a] < st.mass[b];
                          return a < b;
                      });
            int64_t to_evict =
                static_cast<int64_t>(tracked.size()) - budget_;
            for (int64_t i = 0;
                 i < to_evict &&
                 i < static_cast<int64_t>(evictable.size());
                 ++i) {
                st.mass.erase(evictable[i]);
                st.evicted.push_back(evictable[i]);
            }
            std::sort(st.evicted.begin(), st.evicted.end());
        }

        std::vector<int64_t> &keep = sel.per_head[kvh];
        for (const auto &[p, m] : st.mass) {
            if (p < ctx)
                keep.push_back(p);
        }
        std::sort(keep.begin(), keep.end());
        stats_.selected_positions += static_cast<int64_t>(keep.size());
    }
    return sel;
}

} // namespace retrieval
} // namespace specontext
