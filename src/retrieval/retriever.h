/**
 * @file
 * Interface of layer-wise KV retrieval algorithms (the baseline
 * paradigm of paper Fig. 2(a)).
 *
 * Every baseline (StreamingLLM, Quest, ClusterKV, ShadowKV) follows the
 * same life cycle the paper describes in §2.2/§3.1:
 *
 *  1. onPrefillComplete(): expensive preprocessing over the *prompt*
 *     KV only (paging / clustering / quantization);
 *  2. selectForLayer(): query-aware selection inside every decoder
 *     layer of every decode step (the serialized dataflow whose sync
 *     cost is Challenge-1);
 *  3. newly generated KV is *never* preprocessed; those positions are
 *     retained in full (Challenge-2), which this interface enforces via
 *     retainedTail().
 *
 * SpeContext's retrieval head intentionally does NOT implement this
 * interface — it is not layer-wise; see retrieval/retrieval_head.h.
 */
#pragma once

#include <cstdint>
#include <string>

#include "kvcache/kv_cache.h"
#include "model/transformer.h"
#include "tensor/tensor.h"

namespace specontext {
namespace retrieval {

/** Running accounting of live retrieval work (for tests/benches). */
struct RetrievalStats
{
    double score_flops = 0.0; ///< multiply-accumulate count of scoring
    int64_t select_calls = 0; ///< number of selectForLayer invocations
    int64_t selected_positions = 0; ///< total positions returned
};

/** Abstract layer-wise KV retriever. */
class KVRetriever
{
  public:
    explicit KVRetriever(int64_t budget) : budget_(budget) {}
    virtual ~KVRetriever() = default;

    virtual std::string name() const = 0;

    /** Token budget per head (the paper's KV budget B). */
    int64_t budget() const { return budget_; }

    /**
     * One-time preprocessing over the prompt KV. prompt_len fixes the
     * boundary between preprocessed and retained-in-full positions.
     */
    virtual void
    onPrefillComplete(const kv::KVCacheSet &cache, int64_t prompt_len)
    {
        (void)cache;
        prompt_len_ = prompt_len;
    }

    /**
     * Query-aware selection for one layer. q is the current token's
     * RoPE-rotated queries (q_heads x head_dim); selectable cache
     * positions are [0, ctx).
     */
    virtual model::LayerSelection selectForLayer(
        int64_t layer, const Tensor &q, const kv::KVCacheSet &cache,
        int64_t ctx) = 0;

    const RetrievalStats &stats() const { return stats_; }
    void resetStats() { stats_ = RetrievalStats(); }

  protected:
    /**
     * Positions the baseline paradigm always retains: every token
     * generated after the prompt (paper Challenge-2).
     */
    std::vector<int64_t>
    retainedTail(int64_t ctx) const
    {
        std::vector<int64_t> tail;
        for (int64_t p = prompt_len_; p < ctx; ++p)
            tail.push_back(p);
        return tail;
    }

    int64_t prompt_len_ = 0;
    int64_t budget_;
    RetrievalStats stats_;
};

} // namespace retrieval
} // namespace specontext
