#include "retrieval/quest.h"

#include <algorithm>

#include "tensor/topk.h"

namespace specontext {
namespace retrieval {

QuestRetriever::QuestRetriever(int64_t budget, int64_t page_size)
    : KVRetriever(budget), page_size_(page_size)
{
}

void
QuestRetriever::onPrefillComplete(const kv::KVCacheSet &cache,
                                  int64_t prompt_len)
{
    KVRetriever::onPrefillComplete(cache, prompt_len);
    indices_.clear();
    indices_.reserve(cache.layers());
    for (int64_t l = 0; l < cache.layers(); ++l) {
        indices_.emplace_back(page_size_);
        indices_.back().rebuild(cache.layer(l), prompt_len);
    }
}

model::LayerSelection
QuestRetriever::selectForLayer(int64_t layer, const Tensor &q,
                               const kv::KVCacheSet &cache, int64_t ctx)
{
    ++stats_.select_calls;
    const kv::PagedKeyIndex &index = indices_.at(layer);
    const int64_t kv_heads = cache.layer(layer).kvHeads();
    const int64_t group = q.dim(0) / kv_heads;
    const int64_t hd = q.dim(1);
    const int64_t n_pages = index.pages();

    model::LayerSelection sel;
    sel.per_head.resize(kv_heads);
    const std::vector<int64_t> tail = retainedTail(ctx);

    for (int64_t kvh = 0; kvh < kv_heads; ++kvh) {
        // Upper-bound score per page, aggregated over the group's
        // query heads by max.
        std::vector<float> page_scores(n_pages,
                                       -std::numeric_limits<float>::max());
        for (int64_t g = 0; g < group; ++g) {
            const float *qh = q.row(kvh * group + g);
            for (int64_t p = 0; p < n_pages; ++p) {
                page_scores[p] = std::max(
                    page_scores[p], index.upperBoundScore(p, kvh, qh));
            }
        }
        stats_.score_flops +=
            static_cast<double>(n_pages) * group * hd * 2.0;

        const int64_t pages_wanted =
            std::max<int64_t>(1, budget_ / page_size_);
        std::vector<int64_t> top_pages =
            topkIndices(page_scores, pages_wanted);

        std::vector<int64_t> &positions = sel.per_head[kvh];
        for (int64_t p : top_pages) {
            const kv::PageSummary &s = index.summary(p, kvh);
            for (int64_t pos = s.begin; pos < s.end; ++pos)
                positions.push_back(pos);
        }
        positions.insert(positions.end(), tail.begin(), tail.end());
        std::sort(positions.begin(), positions.end());
        stats_.selected_positions +=
            static_cast<int64_t>(positions.size());
    }
    return sel;
}

} // namespace retrieval
} // namespace specontext
