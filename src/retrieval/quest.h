/**
 * @file
 * Quest (Tang et al., ICML'24): page-granular dynamic KV selection.
 *
 * After prefill the prompt keys are partitioned into fixed-size pages,
 * each summarized by element-wise max/min key vectors. At every layer
 * of every decode step, an upper bound of each page's attention score
 * is computed from the current query and the Top-K pages are selected;
 * all KV pairs of selected pages are attended. Newly generated tokens
 * are retained in full (the baseline-paradigm behaviour of §2.2).
 */
#pragma once

#include <vector>

#include "kvcache/paged.h"
#include "retrieval/retriever.h"

namespace specontext {
namespace retrieval {

/** Page-based query-aware retriever. */
class QuestRetriever : public KVRetriever
{
  public:
    QuestRetriever(int64_t budget, int64_t page_size = 16);

    std::string name() const override { return "Quest"; }

    int64_t pageSize() const { return page_size_; }

    void onPrefillComplete(const kv::KVCacheSet &cache,
                           int64_t prompt_len) override;

    model::LayerSelection selectForLayer(int64_t layer, const Tensor &q,
                                         const kv::KVCacheSet &cache,
                                         int64_t ctx) override;

  private:
    int64_t page_size_;
    std::vector<kv::PagedKeyIndex> indices_; ///< one per layer
};

} // namespace retrieval
} // namespace specontext
