#include "retrieval/retrieval_head.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/topk.h"

namespace specontext {
namespace retrieval {

RetrievalHead::RetrievalHead(const model::Transformer &dlm,
                             RetrievalHeadOptions opts)
    : dlm_(dlm), opts_(opts)
{
    if (dlm.config().layers != 1)
        throw std::invalid_argument("retrieval head expects a 1-layer DLM");
    if (opts_.budget <= 0)
        throw std::invalid_argument("retrieval budget must be positive");
}

void
RetrievalHead::reset()
{
    positions_ = 0;
    k_cache_.clear();
    last_weights_ = Tensor();
    score_flops_ = 0.0;
}

void
RetrievalHead::truncateTo(int64_t tokens)
{
    if (tokens >= positions_ || tokens < 0)
        return;
    const model::ModelConfig &cfg = dlm_.config();
    const int64_t key_heads =
        cfg.attention == model::AttentionKind::MLA ? cfg.q_heads
                                                   : cfg.kv_heads;
    k_cache_.resize(tokens * key_heads * cfg.head_dim);
    positions_ = tokens;
}

Tensor
RetrievalHead::processToken(int32_t token)
{
    const model::ModelConfig &cfg = dlm_.config();
    const model::ModelWeights &w = dlm_.weights();
    const model::LayerWeights &lw = w.layers[0];
    const bool mla = cfg.attention == model::AttentionKind::MLA;

    Tensor x({cfg.hidden});
    std::copy(w.embedding.row(token),
              w.embedding.row(token) + cfg.hidden, x.data());
    Tensor xn = ops::rmsnorm(x, lw.attn_norm);

    // Query of the current token.
    Tensor q = ops::vecmat(xn, lw.wq)
                   .reshape({cfg.q_heads, cfg.head_dim});
    ops::applyRope(q, positions_, cfg.rope_theta, cfg.yarn_scale);

    // Key: the head keeps a *full* K cache (no V — values are never
    // needed to rank importance, which is the pruning of Fig. 5(a)).
    Tensor k;
    if (mla) {
        Tensor c = ops::vecmat(xn, lw.w_dkv);
        k = ops::vecmat(c, lw.w_uk).reshape({cfg.q_heads, cfg.head_dim});
        ops::applyRope(k, positions_, cfg.rope_theta, cfg.yarn_scale);
    } else {
        k = ops::vecmat(xn, lw.wk).reshape({cfg.kv_heads, cfg.head_dim});
        ops::applyRope(k, positions_, cfg.rope_theta, cfg.yarn_scale);
    }
    k_cache_.insert(k_cache_.end(), k.data(), k.data() + k.numel());
    ++positions_;
    return q;
}

void
RetrievalHead::observe(int32_t token)
{
    (void)processToken(token);
}

void
RetrievalHead::observe(const std::vector<int32_t> &tokens)
{
    for (int32_t t : tokens)
        observe(t);
}

Tensor
RetrievalHead::attentionWeights(const Tensor &q)
{
    const model::ModelConfig &cfg = dlm_.config();
    const bool mla = cfg.attention == model::AttentionKind::MLA;
    const int64_t hd = cfg.head_dim;
    const int64_t key_heads = mla ? cfg.q_heads : cfg.kv_heads;
    const int64_t group = cfg.q_heads / key_heads;
    const int64_t k_stride = key_heads * hd;
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));

    Tensor weights({cfg.q_heads, positions_});
    for (int64_t h = 0; h < cfg.q_heads; ++h) {
        const int64_t kh = h / group;
        float *row = weights.row(h);
        const float *qh = q.row(h);
        for (int64_t p = 0; p < positions_; ++p) {
            const float *key = k_cache_.data() + p * k_stride + kh * hd;
            row[p] = ops::dot(qh, key, hd) * inv_sqrt_d;
        }
        ops::softmaxInPlace(row, positions_);
    }
    score_flops_ +=
        2.0 * static_cast<double>(cfg.q_heads) * positions_ * hd;
    return weights;
}

model::LayerSelection
RetrievalHead::mapToSelection(const Tensor &weights) const
{
    const model::ModelConfig &cfg = dlm_.config();
    const int64_t n = weights.dim(1);
    const int64_t budget = std::min<int64_t>(opts_.budget, n);

    // Output head count: per KV head for MHA/GQA/MQA (MHA degenerates
    // to per-query-head because kv_heads == q_heads), per query head
    // for MLA.
    const bool mla = cfg.attention == model::AttentionKind::MLA;
    const int64_t out_heads = mla ? cfg.q_heads : cfg.kv_heads;
    const int64_t group = cfg.q_heads / out_heads;

    auto withWindow = [&](std::vector<int64_t> sel) {
        for (int64_t p = std::max<int64_t>(0, n - opts_.recent_window);
             p < n; ++p) {
            sel.push_back(p);
        }
        std::sort(sel.begin(), sel.end());
        sel.erase(std::unique(sel.begin(), sel.end()), sel.end());
        return sel;
    };

    model::LayerSelection out;
    if (opts_.level == RetrievalLevel::BatchLevel) {
        // Batch-level: max-reduce over every query head, one list.
        std::vector<float> agg(n, -std::numeric_limits<float>::max());
        for (int64_t h = 0; h < cfg.q_heads; ++h) {
            const float *row = weights.row(h);
            for (int64_t p = 0; p < n; ++p)
                agg[p] = std::max(agg[p], row[p]);
        }
        const auto sel = withWindow(topkIndices(agg, budget));
        out.per_head.assign(out_heads, sel);
        return out;
    }

    out.per_head.resize(out_heads);
    for (int64_t oh = 0; oh < out_heads; ++oh) {
        // Group-level element-wise max of the member query heads'
        // attention weights (Fig. 5(c)); group == 1 for MHA/MLA.
        std::vector<float> agg(n, -std::numeric_limits<float>::max());
        for (int64_t g = 0; g < group; ++g) {
            const float *row = weights.row(oh * group + g);
            for (int64_t p = 0; p < n; ++p)
                agg[p] = std::max(agg[p], row[p]);
        }
        out.per_head[oh] = withWindow(topkIndices(agg, budget));
    }
    return out;
}

model::LayerSelection
RetrievalHead::step(int32_t token)
{
    Tensor q = processToken(token);
    last_weights_ = attentionWeights(q);
    return mapToSelection(last_weights_);
}

int64_t
RetrievalHead::prunedParameterCount() const
{
    const model::ModelConfig &cfg = dlm_.config();
    const model::LayerWeights &lw = dlm_.weights().layers[0];
    int64_t params = lw.attn_norm.numel();
    params += lw.wq.numel();
    if (cfg.attention == model::AttentionKind::MLA)
        params += lw.w_dkv.numel() + lw.w_uk.numel();
    else
        params += lw.wk.numel();
    return params;
}

int64_t
RetrievalHead::dlmParameterCount() const
{
    return dlm_.config().parameterCount();
}

} // namespace retrieval
} // namespace specontext
