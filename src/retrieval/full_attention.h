/**
 * @file
 * Full-attention "retriever": selects everything. This is the
 * mathematical-equivalence reference (HuggingFace eager, FlashAttention
 * and FlashInfer all compute this; they differ only in kernel cost,
 * which the timing engine models via sim::KernelBackend).
 */
#pragma once

#include "retrieval/retriever.h"

namespace specontext {
namespace retrieval {

/** Selects the full KV cache in every layer. */
class FullAttentionRetriever : public KVRetriever
{
  public:
    FullAttentionRetriever() : KVRetriever(-1) {}

    std::string name() const override { return "FullAttention"; }

    model::LayerSelection
    selectForLayer(int64_t, const Tensor &, const kv::KVCacheSet &,
                   int64_t) override
    {
        ++stats_.select_calls;
        return model::LayerSelection::fullAttention();
    }
};

} // namespace retrieval
} // namespace specontext
