/**
 * @file
 * StreamingLLM (Xiao et al., ICLR'24): permanent-eviction baseline that
 * keeps the first `sink` tokens (the "attention sink") plus a sliding
 * window of the most recent tokens. Selection is input-agnostic —
 * exactly the coarse-grained intrinsic-property strategy §3.1 contrasts
 * with query-aware retrieval.
 */
#pragma once

#include <algorithm>

#include "retrieval/retriever.h"

namespace specontext {
namespace retrieval {

/** Attention-sink + sliding-window selection. */
class StreamingLLMRetriever : public KVRetriever
{
  public:
    /** budget = sink_tokens + window size. */
    StreamingLLMRetriever(int64_t budget, int64_t sink_tokens = 4)
        : KVRetriever(budget), sink_(std::min(sink_tokens, budget))
    {
    }

    std::string name() const override { return "StreamingLLM"; }

    int64_t sinkTokens() const { return sink_; }

    model::LayerSelection
    selectForLayer(int64_t, const Tensor &q, const kv::KVCacheSet &cache,
                   int64_t ctx) override
    {
        (void)q;
        ++stats_.select_calls;
        const int64_t kv_heads = cache.layer(0).latentMode()
                                     ? 0
                                     : cache.layer(0).kvHeads();
        std::vector<int64_t> keep;
        const int64_t window = budget_ - sink_;
        for (int64_t p = 0; p < std::min(sink_, ctx); ++p)
            keep.push_back(p);
        const int64_t start = std::max(sink_, ctx - window);
        for (int64_t p = start; p < ctx; ++p)
            keep.push_back(p);
        stats_.selected_positions += static_cast<int64_t>(keep.size());

        model::LayerSelection sel;
        // Same positions for every head: eviction is head-agnostic.
        sel.per_head.assign(std::max<int64_t>(kv_heads, 1), keep);
        return sel;
    }

  private:
    int64_t sink_;
};

} // namespace retrieval
} // namespace specontext
