/**
 * @file
 * ShadowKV (Sun et al., ICML'25): quantized-key KV selection.
 *
 * The prompt key cache is quantized (symmetric int4 per token per
 * head); at each layer of each decode step the query is scored against
 * the quantized keys, the Top-K tokens are selected, and their values
 * are fetched. Quantization is the preprocessing step; its scoring pass
 * touches every prompt token but at a quarter of the bytes. New tokens
 * are retained in full, as in all prompt-preprocessing baselines.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "retrieval/retriever.h"

namespace specontext {
namespace retrieval {

/** Int4-quantized key store for one (layer, kv-head). */
struct QuantizedKeys
{
    std::vector<int8_t> q;     ///< n * head_dim values in [-7, 7]
    std::vector<float> scales; ///< per-token dequantization scale
    int64_t head_dim = 0;

    int64_t tokens() const
    {
        return head_dim == 0
                   ? 0
                   : static_cast<int64_t>(scales.size());
    }

    /** Dequantized dot product of query against token pos's key. */
    float score(const float *query, int64_t pos) const;
};

/** Quantized-key query-aware retriever. */
class ShadowKVRetriever : public KVRetriever
{
  public:
    explicit ShadowKVRetriever(int64_t budget);

    std::string name() const override { return "ShadowKV"; }

    void onPrefillComplete(const kv::KVCacheSet &cache,
                           int64_t prompt_len) override;

    model::LayerSelection selectForLayer(int64_t layer, const Tensor &q,
                                         const kv::KVCacheSet &cache,
                                         int64_t ctx) override;

    /** Quantized store of one (layer, kv-head), for tests. */
    const QuantizedKeys &quantized(int64_t layer, int64_t kv_head) const;

    /**
     * Mean absolute quantization error over all stored keys — a
     * sanity metric tests assert is small but non-zero.
     */
    double meanQuantError(const kv::KVCacheSet &cache) const;

  private:
    int64_t kv_heads_ = 0;
    std::vector<QuantizedKeys> stores_; ///< [layer * kv_heads + head]
};

} // namespace retrieval
} // namespace specontext
