/**
 * @file
 * ClusterKV (Liu et al., DAC'25): semantic-space KV selection.
 *
 * The prompt keys of each (layer, KV head) are clustered with k-means;
 * cluster centroids act as representatives. At each layer of each
 * decode step the centroids are scored against the query and whole
 * clusters are recalled until the token budget is met. Clustering is
 * the expensive preprocessing the paper charges this baseline for, and
 * it is never repeated over newly generated tokens (retained in full).
 */
#pragma once

#include <vector>

#include "retrieval/retriever.h"

namespace specontext {
namespace retrieval {

/** One clustered (layer, kv-head)'s model. */
struct KeyClusters
{
    /** centroid c: centroids[c * head_dim .. +head_dim) */
    std::vector<float> centroids;
    /** members[c] = prompt positions belonging to cluster c. */
    std::vector<std::vector<int64_t>> members;
    int64_t head_dim = 0;

    int64_t count() const
    {
        return static_cast<int64_t>(members.size());
    }
};

/** k-means-based query-aware retriever. */
class ClusterKVRetriever : public KVRetriever
{
  public:
    /**
     * @param budget token budget per head
     * @param avg_cluster_size target mean tokens per cluster
     * @param iterations k-means refinement passes
     */
    ClusterKVRetriever(int64_t budget, int64_t avg_cluster_size = 16,
                       int64_t iterations = 4);

    std::string name() const override { return "ClusterKV"; }

    void onPrefillComplete(const kv::KVCacheSet &cache,
                           int64_t prompt_len) override;

    model::LayerSelection selectForLayer(int64_t layer, const Tensor &q,
                                         const kv::KVCacheSet &cache,
                                         int64_t ctx) override;

    /** Clusters of one (layer, kv-head), for tests. */
    const KeyClusters &clusters(int64_t layer, int64_t kv_head) const;

    /** Total k-means multiply-accumulates spent in preprocessing. */
    double preprocessFlops() const { return preprocess_flops_; }

  private:
    int64_t avg_cluster_size_;
    int64_t iterations_;
    int64_t kv_heads_ = 0;
    std::vector<KeyClusters> clusters_; ///< [layer * kv_heads + head]
    double preprocess_flops_ = 0.0;

    KeyClusters clusterOneHead(const kv::LayerKVCache &cache,
                               int64_t head, int64_t prompt_len);
};

} // namespace retrieval
} // namespace specontext
