/**
 * @file
 * H2O-style heavy-hitter eviction (Zhang et al., NeurIPS'23): an
 * additional permanent-eviction baseline from the KV-sparsity
 * literature the paper's related work covers (§2.2).
 *
 * Per (layer, KV head), an accumulator tracks each position's total
 * attention mass observed so far; once the tracked set exceeds the
 * budget, the positions with the lowest accumulated mass are evicted
 * permanently, always protecting a recent window. Unlike the dynamic
 * selectors, evicted KV pairs can never return — the irreversible
 * information loss §3.1 attributes to this family.
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "retrieval/retriever.h"

namespace specontext {
namespace retrieval {

/** Heavy-hitter accumulator state of one (layer, kv-head). */
struct HeavyHitterState
{
    /** tracked position -> accumulated attention mass */
    std::unordered_map<int64_t, double> mass;
    /** positions already evicted (never re-admitted) */
    std::vector<int64_t> evicted;
};

/** Accumulated-attention eviction retriever. */
class H2ORetriever : public KVRetriever
{
  public:
    /**
     * @param budget tracked tokens per head
     * @param recent_window always-protected trailing tokens
     */
    H2ORetriever(int64_t budget, int64_t recent_window = 8);

    std::string name() const override { return "H2O"; }

    void onPrefillComplete(const kv::KVCacheSet &cache,
                           int64_t prompt_len) override;

    model::LayerSelection selectForLayer(int64_t layer, const Tensor &q,
                                         const kv::KVCacheSet &cache,
                                         int64_t ctx) override;

    /** Accumulator of one (layer, kv-head), for tests. */
    const HeavyHitterState &state(int64_t layer, int64_t kv_head) const;

  private:
    int64_t recent_window_;
    int64_t kv_heads_ = 0;
    std::vector<HeavyHitterState> states_; ///< [layer*kv_heads + head]
};

} // namespace retrieval
} // namespace specontext
