/**
 * @file
 * SpeContext's lightweight retrieval head (paper Section 4).
 *
 * The head is the DLM pruned down to the operations needed to produce
 * attention weights: the embedding table, the input RMSNorm and the
 * Q/K projections of the DLM's single decoder layer (>90 % parameter
 * reduction relative to the full DLM, §4.3 / Fig. 5(a) "Pruned"). It
 * runs *before* the LLM on the same input token, maintains a full Key
 * cache of its own, computes head-level attention weights, and emits
 * one global Top-K selection per LLM KV head that the LLM reuses in
 * every layer — eliminating the layer-wise retrieve-and-load
 * serialization of the baseline paradigm.
 *
 * Mapping rules per attention mechanism (Fig. 5(b)-(e)):
 *  - MHA: per-head Top-K over the head's own attention weights;
 *  - GQA: element-wise max of the weights of the group's query heads,
 *    then group-level Top-K (one list per KV head);
 *  - MQA: all query heads max-reduce into the single KV head's list;
 *  - MLA: per-query-head Top-K; the selected latent c vectors are
 *    up-projected per head by the LLM.
 *
 * A batch-level mode (single list shared by all heads, Fig. 5(a))
 * exists for the head-level vs batch-level comparison.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.h"
#include "tensor/tensor.h"

namespace specontext {
namespace retrieval {

/** Selection granularity of the retrieval head (Fig. 5(a)). */
enum class RetrievalLevel {
    HeadLevel,  ///< distinct token set per (KV) head — the paper's choice
    BatchLevel, ///< single token set shared by all heads
};

/** Options of the retrieval head. */
struct RetrievalHeadOptions
{
    int64_t budget = 64;                     ///< tokens per head (B)
    RetrievalLevel level = RetrievalLevel::HeadLevel;
    /**
     * Tokens of local context always included besides Top-K. The paper
     * keeps raw Top-K; a small always-recent window is exposed for
     * ablation and defaults to 0.
     */
    int64_t recent_window = 0;
};

/**
 * Pruned-DLM retrieval head. Holds references into the DLM weights
 * (embedding, norm, W_q, W_k only) and its own growable K cache.
 */
class RetrievalHead
{
  public:
    /**
     * @param dlm the distilled model (1 layer) the head is pruned from
     * @param opts selection options
     */
    RetrievalHead(const model::Transformer &dlm,
                  RetrievalHeadOptions opts);

    const RetrievalHeadOptions &options() const { return opts_; }
    void setBudget(int64_t budget) { opts_.budget = budget; }

    /** Tokens currently in the head's K cache. */
    int64_t cachedTokens() const { return positions_; }

    /** Forget all cached keys (new sequence). */
    void reset();

    /**
     * Roll the K cache back to `tokens` entries (speculative-decoding
     * rollback of rejected drafts). No-op when already shorter.
     */
    void truncateTo(int64_t tokens);

    /**
     * Observe one token *without* producing a selection (prefill path:
     * the head still has to build its K cache over the prompt).
     */
    void observe(int32_t token);

    /** Observe a whole prompt. */
    void observe(const std::vector<int32_t> &tokens);

    /**
     * Observe the next input token and return the global selection the
     * LLM should use for *all* layers when generating the next output:
     * one sorted position list per LLM KV head (per query head under
     * MHA/MLA). Positions index the LLM's KV cache, which by
     * construction is position-aligned with the head's own cache.
     */
    model::LayerSelection step(int32_t token);

    /**
     * Raw head-level attention weights of the last step
     * (q_heads x cached_tokens), before any group reduction — the
     * quantity Fig. 5(a) accumulates.
     */
    const Tensor &lastAttentionWeights() const { return last_weights_; }

    /**
     * Parameters the pruned head keeps: W_q + W_k + norm. The paper's
     * "~0.03B for an 8B model (~60 MB FP16)" counts exactly these; the
     * embedding table is shared with the LLM and not duplicated.
     */
    int64_t prunedParameterCount() const;

    /** Parameters of the full (unpruned) DLM, for the >90 % claim. */
    int64_t dlmParameterCount() const;

    /** Scoring multiply-accumulates spent so far (live accounting). */
    double scoreFlops() const { return score_flops_; }

  private:
    const model::Transformer &dlm_;
    RetrievalHeadOptions opts_;
    int64_t positions_ = 0;
    std::vector<float> k_cache_; ///< kv_heads-major per token
    Tensor last_weights_;
    double score_flops_ = 0.0;

    /** Embed + norm + QK project + rope; appends K, returns Q. */
    Tensor processToken(int32_t token);

    /** Head-level weights (q_heads x positions_) for query q. */
    Tensor attentionWeights(const Tensor &q);

    model::LayerSelection mapToSelection(const Tensor &weights) const;
};

} // namespace retrieval
} // namespace specontext
