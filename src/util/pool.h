/**
 * @file
 * Chunked object pool: slab-allocates storage for T in fixed-size
 * chunks and recycles destroyed objects through an intrusive free
 * list, so steady-state create/destroy churn (prefix-tree block nodes
 * under LRU eviction, queue nodes under preemption re-entry) costs a
 * pointer pop instead of a malloc.
 *
 * Determinism note: the pool changes only *where* objects live, never
 * what they contain or in which order the owning data structure visits
 * them — every container built on it keys by content (token blocks,
 * arrival times, ids), not by address — so pooled and heap-allocated
 * runs are bit-identical. Not thread-safe; one pool per owning
 * structure, same as the structures themselves.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace specontext {
namespace util {

/** Lifetime counters of one pool (self-bench material). */
struct PoolStats
{
    int64_t constructed = 0; ///< create() calls
    int64_t destroyed = 0;   ///< destroy() calls
    int64_t reused = 0;      ///< create() served from the free list
    int64_t chunks = 0;      ///< slabs obtained from the system
};

/** Slab pool with an intrusive free list; objects of exactly T. */
template <typename T, size_t ChunkObjects = 256>
class Pool
{
    static_assert(ChunkObjects > 0, "Pool: empty chunk");

  public:
    Pool() = default;
    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /** Placement-construct a T; storage comes from the free list when
     *  possible, else from the current slab (a new slab is started
     *  when it is full). */
    template <typename... Args>
    T *create(Args &&...args)
    {
        void *slot;
        if (free_) {
            FreeSlot *head = free_;
            free_ = head->next;
            slot = head;
            ++stats_.reused;
        } else {
            if (next_in_chunk_ == ChunkObjects) {
                chunks_.push_back(
                    std::make_unique<Storage[]>(ChunkObjects));
                next_in_chunk_ = 0;
                ++stats_.chunks;
            }
            slot = &chunks_.back()[next_in_chunk_++];
        }
        ++stats_.constructed;
        return ::new (slot) T(std::forward<Args>(args)...);
    }

    /** Destroy a pool-created T and recycle its slot. Null is a no-op. */
    void destroy(T *obj)
    {
        if (!obj)
            return;
        obj->~T();
        auto *slot = reinterpret_cast<FreeSlot *>(obj);
        slot->next = free_;
        free_ = slot;
        ++stats_.destroyed;
    }

    /** Live objects (created minus destroyed). */
    int64_t liveObjects() const
    {
        return stats_.constructed - stats_.destroyed;
    }

    const PoolStats &stats() const { return stats_; }

  private:
    struct FreeSlot
    {
        FreeSlot *next;
    };
    using Storage =
        typename std::aligned_storage<sizeof(T) < sizeof(FreeSlot)
                                          ? sizeof(FreeSlot)
                                          : sizeof(T),
                                      alignof(T) < alignof(FreeSlot)
                                          ? alignof(FreeSlot)
                                          : alignof(T)>::type;

    std::vector<std::unique_ptr<Storage[]>> chunks_;
    size_t next_in_chunk_ = ChunkObjects; ///< current slab cursor
    FreeSlot *free_ = nullptr;
    PoolStats stats_;
};

} // namespace util
} // namespace specontext
