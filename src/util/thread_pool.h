/**
 * @file
 * Minimal fork-join worker pool for the cluster's parallel replica
 * stepping: the caller submits a batch of independent closures and
 * blocks in wait() until all of them ran. No futures, no stealing, no
 * shutdown protocol beyond the destructor — the serving loop needs
 * exactly "run these K lane steps on up to N threads, then continue
 * deterministically", and everything it parallelizes is independent
 * by construction (results may not depend on execution order).
 *
 * With threads == 1 (or 0) no workers are spawned and submit() runs
 * the closure inline, so a single-threaded "parallel" run shares the
 * sequential code path exactly.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace specontext {
namespace util {

/** Fixed-size fork-join pool. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (<= 1 means inline execution). */
    explicit ThreadPool(size_t threads)
    {
        if (threads <= 1)
            return;
        workers_.reserve(threads);
        for (size_t i = 0; i < threads; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t threads() const
    {
        return workers_.empty() ? 1 : workers_.size();
    }

    /** Enqueue one task (runs inline when no workers exist). */
    void submit(std::function<void()> task)
    {
        if (workers_.empty()) {
            task();
            return;
        }
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mu_);
            tasks_.push_back(std::move(task));
        }
        cv_.notify_one();
    }

    /** Block until every submitted task has finished. The serving
     *  loop erects one barrier per fleet event, so the join spins
     *  (yielding) instead of sleeping on a condition variable — a
     *  microsecond-scale bulk window must not pay a scheduler wakeup
     *  on both sides. */
    void wait()
    {
        if (workers_.empty())
            return;
        while (outstanding_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

    /**
     * Fork-join shard dispatch with zero per-call allocation: run
     * fn(ctx, s) once for every shard s in [0, n) and return when all
     * of them finished. Worker w executes shards w, w+W, w+2W, …
     * (strided), so a caller that sizes its shards to the worker
     * count gets one contiguous shard per worker. With no workers the
     * shards run inline, in ascending order, on the calling thread.
     *
     * The plain function pointer + context (instead of
     * std::function) is the point: the cluster's era stepping
     * dispatches one job per fleet event, and a std::function capture
     * would heap-allocate on every one of the millions of dispatches
     * a long sweep makes. A captureless lambda converts implicitly
     * (`+[](void *c, size_t s) { … }`).
     *
     * Publication protocol: the job fields are written before the
     * generation counter's release-increment; a worker acquires the
     * counter, so it sees the fields. Every worker acknowledges every
     * generation exactly once (even when the stride hands it no
     * shards) by decrementing the pending count with release order;
     * the caller spin-joins on pending == 0 with acquire, so all
     * shard effects are visible when this returns. Not reentrant: one
     * runShards at a time (the serving loop is the only caller), and
     * do not interleave with an un-waited submit() batch.
     */
    void runShards(size_t n, void (*fn)(void *, size_t), void *ctx)
    {
        if (workers_.empty()) {
            for (size_t s = 0; s < n; ++s)
                fn(ctx, s);
            return;
        }
        shard_fn_ = fn;
        shard_ctx_ = ctx;
        shard_n_ = n;
        shard_pending_.store(workers_.size(),
                             std::memory_order_relaxed);
        shard_gen_.fetch_add(1, std::memory_order_release);
        {
            // Fence against the sleep path: a worker that just
            // evaluated its cv predicate either saw the new generation
            // or has not yet blocked — taking the lock here makes the
            // notify below un-missable.
            std::lock_guard<std::mutex> lock(mu_);
        }
        cv_.notify_all();
        while (shard_pending_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

  private:
    void workerLoop(size_t widx)
    {
        int idle = 0;
        uint64_t seen_gen = 0;
        for (;;) {
            // Shard jobs first: they are the latency-critical barrier
            // the serving loop spins on.
            const uint64_t gen =
                shard_gen_.load(std::memory_order_acquire);
            if (gen != seen_gen) {
                seen_gen = gen;
                for (size_t s = widx; s < shard_n_;
                     s += workers_.size())
                    shard_fn_(shard_ctx_, s);
                shard_pending_.fetch_sub(1,
                                         std::memory_order_release);
                idle = 0;
                continue;
            }
            std::function<void()> task;
            {
                // Spin phase: poll the queue without blocking so
                // back-to-back barriers reuse hot workers.
                std::unique_lock<std::mutex> lock(mu_,
                                                  std::try_to_lock);
                if (lock.owns_lock()) {
                    if (!tasks_.empty()) {
                        task = std::move(tasks_.back());
                        tasks_.pop_back();
                    } else if (stopping_) {
                        return;
                    }
                }
            }
            if (task) {
                idle = 0;
                task();
                // Release pairs with wait()'s acquire: everything the
                // task wrote is visible to the joining thread.
                outstanding_.fetch_sub(1, std::memory_order_release);
                continue;
            }
            if (++idle < kIdleSpins) {
                std::this_thread::yield();
                continue;
            }
            // Long idle: block until the next submit / shard job (or
            // shutdown) rather than burning a core between bursts.
            idle = 0;
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this, seen_gen] {
                return stopping_ || !tasks_.empty() ||
                       shard_gen_.load(std::memory_order_acquire) !=
                           seen_gen;
            });
            if (tasks_.empty() && stopping_ &&
                shard_gen_.load(std::memory_order_acquire) == seen_gen)
                return;
        }
    }

    static constexpr int kIdleSpins = 256;

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::function<void()>> tasks_;
    std::atomic<size_t> outstanding_{0};
    bool stopping_ = false;

    // One-at-a-time shard job (see runShards). fn/ctx/n are ordinary
    // fields: the generation counter's release/acquire pair orders
    // them, and reuse is fenced by the pending-count join.
    void (*shard_fn_)(void *, size_t) = nullptr;
    void *shard_ctx_ = nullptr;
    size_t shard_n_ = 0;
    std::atomic<uint64_t> shard_gen_{0};
    std::atomic<size_t> shard_pending_{0};
};

} // namespace util
} // namespace specontext
