/**
 * @file
 * Minimal fork-join worker pool for the cluster's parallel replica
 * stepping: the caller submits a batch of independent closures and
 * blocks in wait() until all of them ran. No futures, no stealing, no
 * shutdown protocol beyond the destructor — the serving loop needs
 * exactly "run these K lane steps on up to N threads, then continue
 * deterministically", and everything it parallelizes is independent
 * by construction (results may not depend on execution order).
 *
 * With threads == 1 (or 0) no workers are spawned and submit() runs
 * the closure inline, so a single-threaded "parallel" run shares the
 * sequential code path exactly.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace specontext {
namespace util {

/** Fixed-size fork-join pool. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (<= 1 means inline execution). */
    explicit ThreadPool(size_t threads)
    {
        if (threads <= 1)
            return;
        workers_.reserve(threads);
        for (size_t i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t threads() const
    {
        return workers_.empty() ? 1 : workers_.size();
    }

    /** Enqueue one task (runs inline when no workers exist). */
    void submit(std::function<void()> task)
    {
        if (workers_.empty()) {
            task();
            return;
        }
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mu_);
            tasks_.push_back(std::move(task));
        }
        cv_.notify_one();
    }

    /** Block until every submitted task has finished. The serving
     *  loop erects one barrier per fleet event, so the join spins
     *  (yielding) instead of sleeping on a condition variable — a
     *  microsecond-scale bulk window must not pay a scheduler wakeup
     *  on both sides. */
    void wait()
    {
        if (workers_.empty())
            return;
        while (outstanding_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

  private:
    void workerLoop()
    {
        int idle = 0;
        for (;;) {
            std::function<void()> task;
            {
                // Spin phase: poll the queue without blocking so
                // back-to-back barriers reuse hot workers.
                std::unique_lock<std::mutex> lock(mu_,
                                                  std::try_to_lock);
                if (lock.owns_lock()) {
                    if (!tasks_.empty()) {
                        task = std::move(tasks_.back());
                        tasks_.pop_back();
                    } else if (stopping_) {
                        return;
                    }
                }
            }
            if (task) {
                idle = 0;
                task();
                // Release pairs with wait()'s acquire: everything the
                // task wrote is visible to the joining thread.
                outstanding_.fetch_sub(1, std::memory_order_release);
                continue;
            }
            if (++idle < kIdleSpins) {
                std::this_thread::yield();
                continue;
            }
            // Long idle: block until the next submit (or shutdown)
            // rather than burning a core between dispatch bursts.
            idle = 0;
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty() && stopping_)
                return;
        }
    }

    static constexpr int kIdleSpins = 256;

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::function<void()>> tasks_;
    std::atomic<size_t> outstanding_{0};
    bool stopping_ = false;
};

} // namespace util
} // namespace specontext
