# Empty dependencies file for bench_fig05_head_similarity.
# This may be replaced when dependencies are built.
