file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_head_similarity.dir/bench/bench_fig05_head_similarity.cc.o"
  "CMakeFiles/bench_fig05_head_similarity.dir/bench/bench_fig05_head_similarity.cc.o.d"
  "bench_fig05_head_similarity"
  "bench_fig05_head_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_head_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
