# Empty compiler generated dependencies file for bench_prefix_sharing.
# This may be replaced when dependencies are built.
