file(REMOVE_RECURSE
  "CMakeFiles/bench_prefix_sharing.dir/bench/bench_prefix_sharing.cc.o"
  "CMakeFiles/bench_prefix_sharing.dir/bench/bench_prefix_sharing.cc.o.d"
  "bench_prefix_sharing"
  "bench_prefix_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefix_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
