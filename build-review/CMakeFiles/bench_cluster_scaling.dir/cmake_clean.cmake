file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_scaling.dir/bench/bench_cluster_scaling.cc.o"
  "CMakeFiles/bench_cluster_scaling.dir/bench/bench_cluster_scaling.cc.o.d"
  "bench_cluster_scaling"
  "bench_cluster_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
