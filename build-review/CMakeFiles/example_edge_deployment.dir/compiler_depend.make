# Empty compiler generated dependencies file for example_edge_deployment.
# This may be replaced when dependencies are built.
