file(REMOVE_RECURSE
  "CMakeFiles/example_edge_deployment.dir/examples/edge_deployment.cpp.o"
  "CMakeFiles/example_edge_deployment.dir/examples/edge_deployment.cpp.o.d"
  "example_edge_deployment"
  "example_edge_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_edge_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
