# Empty dependencies file for example_preemption.
# This may be replaced when dependencies are built.
