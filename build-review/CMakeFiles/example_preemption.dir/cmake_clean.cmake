file(REMOVE_RECURSE
  "CMakeFiles/example_preemption.dir/examples/preemption.cpp.o"
  "CMakeFiles/example_preemption.dir/examples/preemption.cpp.o.d"
  "example_preemption"
  "example_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
