# Empty compiler generated dependencies file for test_elastic_loader.
# This may be replaced when dependencies are built.
