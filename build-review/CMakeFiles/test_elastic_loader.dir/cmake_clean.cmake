file(REMOVE_RECURSE
  "CMakeFiles/test_elastic_loader.dir/tests/test_elastic_loader.cc.o"
  "CMakeFiles/test_elastic_loader.dir/tests/test_elastic_loader.cc.o.d"
  "test_elastic_loader"
  "test_elastic_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastic_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
