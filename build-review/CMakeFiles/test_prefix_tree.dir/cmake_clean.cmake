file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_tree.dir/tests/test_prefix_tree.cc.o"
  "CMakeFiles/test_prefix_tree.dir/tests/test_prefix_tree.cc.o.d"
  "test_prefix_tree"
  "test_prefix_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
