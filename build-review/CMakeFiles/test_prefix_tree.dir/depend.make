# Empty dependencies file for test_prefix_tree.
# This may be replaced when dependencies are built.
