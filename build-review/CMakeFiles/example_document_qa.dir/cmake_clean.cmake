file(REMOVE_RECURSE
  "CMakeFiles/example_document_qa.dir/examples/document_qa.cpp.o"
  "CMakeFiles/example_document_qa.dir/examples/document_qa.cpp.o.d"
  "example_document_qa"
  "example_document_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_document_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
