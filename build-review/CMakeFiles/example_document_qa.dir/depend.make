# Empty dependencies file for example_document_qa.
# This may be replaced when dependencies are built.
