# Empty compiler generated dependencies file for example_fleet_sizing.
# This may be replaced when dependencies are built.
