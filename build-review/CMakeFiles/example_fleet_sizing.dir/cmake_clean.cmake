file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_sizing.dir/examples/fleet_sizing.cpp.o"
  "CMakeFiles/example_fleet_sizing.dir/examples/fleet_sizing.cpp.o.d"
  "example_fleet_sizing"
  "example_fleet_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
