file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_prefetch_overlap.dir/bench/bench_fig06_prefetch_overlap.cc.o"
  "CMakeFiles/bench_fig06_prefetch_overlap.dir/bench/bench_fig06_prefetch_overlap.cc.o.d"
  "bench_fig06_prefetch_overlap"
  "bench_fig06_prefetch_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_prefetch_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
