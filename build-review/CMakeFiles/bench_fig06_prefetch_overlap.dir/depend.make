# Empty dependencies file for bench_fig06_prefetch_overlap.
# This may be replaced when dependencies are built.
