file(REMOVE_RECURSE
  "CMakeFiles/test_timing_engine.dir/tests/test_timing_engine.cc.o"
  "CMakeFiles/test_timing_engine.dir/tests/test_timing_engine.cc.o.d"
  "test_timing_engine"
  "test_timing_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
