# Empty compiler generated dependencies file for test_timing_engine.
# This may be replaced when dependencies are built.
