# Empty dependencies file for example_autoscale.
# This may be replaced when dependencies are built.
