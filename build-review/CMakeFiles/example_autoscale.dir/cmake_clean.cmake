file(REMOVE_RECURSE
  "CMakeFiles/example_autoscale.dir/examples/autoscale.cpp.o"
  "CMakeFiles/example_autoscale.dir/examples/autoscale.cpp.o.d"
  "example_autoscale"
  "example_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
