# Empty dependencies file for test_system_registry.
# This may be replaced when dependencies are built.
