file(REMOVE_RECURSE
  "CMakeFiles/test_system_registry.dir/tests/test_system_registry.cc.o"
  "CMakeFiles/test_system_registry.dir/tests/test_system_registry.cc.o.d"
  "test_system_registry"
  "test_system_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
