# Empty dependencies file for test_retrieval_head.
# This may be replaced when dependencies are built.
