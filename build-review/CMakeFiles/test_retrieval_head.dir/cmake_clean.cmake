file(REMOVE_RECURSE
  "CMakeFiles/test_retrieval_head.dir/tests/test_retrieval_head.cc.o"
  "CMakeFiles/test_retrieval_head.dir/tests/test_retrieval_head.cc.o.d"
  "test_retrieval_head"
  "test_retrieval_head.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retrieval_head.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
