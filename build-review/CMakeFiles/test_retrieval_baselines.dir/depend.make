# Empty dependencies file for test_retrieval_baselines.
# This may be replaced when dependencies are built.
