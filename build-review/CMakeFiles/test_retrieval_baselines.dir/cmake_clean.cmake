file(REMOVE_RECURSE
  "CMakeFiles/test_retrieval_baselines.dir/tests/test_retrieval_baselines.cc.o"
  "CMakeFiles/test_retrieval_baselines.dir/tests/test_retrieval_baselines.cc.o.d"
  "test_retrieval_baselines"
  "test_retrieval_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retrieval_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
