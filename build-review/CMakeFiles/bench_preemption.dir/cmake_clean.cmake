file(REMOVE_RECURSE
  "CMakeFiles/bench_preemption.dir/bench/bench_preemption.cc.o"
  "CMakeFiles/bench_preemption.dir/bench/bench_preemption.cc.o.d"
  "bench_preemption"
  "bench_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
