# Empty dependencies file for test_kvcache.
# This may be replaced when dependencies are built.
