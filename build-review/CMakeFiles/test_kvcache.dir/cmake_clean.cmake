file(REMOVE_RECURSE
  "CMakeFiles/test_kvcache.dir/tests/test_kvcache.cc.o"
  "CMakeFiles/test_kvcache.dir/tests/test_kvcache.cc.o.d"
  "test_kvcache"
  "test_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
