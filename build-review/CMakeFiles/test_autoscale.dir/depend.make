# Empty dependencies file for test_autoscale.
# This may be replaced when dependencies are built.
