file(REMOVE_RECURSE
  "CMakeFiles/test_autoscale.dir/tests/test_autoscale.cc.o"
  "CMakeFiles/test_autoscale.dir/tests/test_autoscale.cc.o.d"
  "test_autoscale"
  "test_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
