file(REMOVE_RECURSE
  "CMakeFiles/example_prefix_affinity.dir/examples/prefix_affinity.cpp.o"
  "CMakeFiles/example_prefix_affinity.dir/examples/prefix_affinity.cpp.o.d"
  "example_prefix_affinity"
  "example_prefix_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_prefix_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
