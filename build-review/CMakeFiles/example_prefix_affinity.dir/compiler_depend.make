# Empty compiler generated dependencies file for example_prefix_affinity.
# This may be replaced when dependencies are built.
