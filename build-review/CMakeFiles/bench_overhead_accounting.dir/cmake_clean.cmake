file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_accounting.dir/bench/bench_overhead_accounting.cc.o"
  "CMakeFiles/bench_overhead_accounting.dir/bench/bench_overhead_accounting.cc.o.d"
  "bench_overhead_accounting"
  "bench_overhead_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
