# Empty compiler generated dependencies file for bench_overhead_accounting.
# This may be replaced when dependencies are built.
