# Empty dependencies file for bench_autoscale.
# This may be replaced when dependencies are built.
