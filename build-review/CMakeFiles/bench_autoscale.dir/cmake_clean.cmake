file(REMOVE_RECURSE
  "CMakeFiles/bench_autoscale.dir/bench/bench_autoscale.cc.o"
  "CMakeFiles/bench_autoscale.dir/bench/bench_autoscale.cc.o.d"
  "bench_autoscale"
  "bench_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
