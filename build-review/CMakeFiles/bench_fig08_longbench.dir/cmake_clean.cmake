file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_longbench.dir/bench/bench_fig08_longbench.cc.o"
  "CMakeFiles/bench_fig08_longbench.dir/bench/bench_fig08_longbench.cc.o.d"
  "bench_fig08_longbench"
  "bench_fig08_longbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_longbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
