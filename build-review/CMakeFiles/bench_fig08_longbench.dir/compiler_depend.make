# Empty compiler generated dependencies file for bench_fig08_longbench.
# This may be replaced when dependencies are built.
