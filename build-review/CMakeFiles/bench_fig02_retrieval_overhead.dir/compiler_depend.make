# Empty compiler generated dependencies file for bench_fig02_retrieval_overhead.
# This may be replaced when dependencies are built.
