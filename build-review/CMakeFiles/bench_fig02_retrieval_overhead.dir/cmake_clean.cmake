file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_retrieval_overhead.dir/bench/bench_fig02_retrieval_overhead.cc.o"
  "CMakeFiles/bench_fig02_retrieval_overhead.dir/bench/bench_fig02_retrieval_overhead.cc.o.d"
  "bench_fig02_retrieval_overhead"
  "bench_fig02_retrieval_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_retrieval_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
