file(REMOVE_RECURSE
  "CMakeFiles/test_speculative.dir/tests/test_speculative.cc.o"
  "CMakeFiles/test_speculative.dir/tests/test_speculative.cc.o.d"
  "test_speculative"
  "test_speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
