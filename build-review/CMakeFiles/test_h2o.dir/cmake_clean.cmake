file(REMOVE_RECURSE
  "CMakeFiles/test_h2o.dir/tests/test_h2o.cc.o"
  "CMakeFiles/test_h2o.dir/tests/test_h2o.cc.o.d"
  "test_h2o"
  "test_h2o.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h2o.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
