# Empty dependencies file for test_h2o.
# This may be replaced when dependencies are built.
