# Empty compiler generated dependencies file for example_agent_reasoning.
# This may be replaced when dependencies are built.
