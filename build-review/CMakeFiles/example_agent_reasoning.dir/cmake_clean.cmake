file(REMOVE_RECURSE
  "CMakeFiles/example_agent_reasoning.dir/examples/agent_reasoning.cpp.o"
  "CMakeFiles/example_agent_reasoning.dir/examples/agent_reasoning.cpp.o.d"
  "example_agent_reasoning"
  "example_agent_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_agent_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
