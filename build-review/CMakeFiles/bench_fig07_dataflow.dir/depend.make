# Empty dependencies file for bench_fig07_dataflow.
# This may be replaced when dependencies are built.
