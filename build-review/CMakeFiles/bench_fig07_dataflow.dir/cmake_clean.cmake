file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_dataflow.dir/bench/bench_fig07_dataflow.cc.o"
  "CMakeFiles/bench_fig07_dataflow.dir/bench/bench_fig07_dataflow.cc.o.d"
  "bench_fig07_dataflow"
  "bench_fig07_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
