file(REMOVE_RECURSE
  "CMakeFiles/test_memory_model.dir/tests/test_memory_model.cc.o"
  "CMakeFiles/test_memory_model.dir/tests/test_memory_model.cc.o.d"
  "test_memory_model"
  "test_memory_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
