file(REMOVE_RECURSE
  "CMakeFiles/test_memory_manager.dir/tests/test_memory_manager.cc.o"
  "CMakeFiles/test_memory_manager.dir/tests/test_memory_manager.cc.o.d"
  "test_memory_manager"
  "test_memory_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
