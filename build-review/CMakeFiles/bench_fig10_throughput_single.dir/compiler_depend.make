# Empty compiler generated dependencies file for bench_fig10_throughput_single.
# This may be replaced when dependencies are built.
