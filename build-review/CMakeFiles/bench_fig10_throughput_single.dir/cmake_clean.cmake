file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_throughput_single.dir/bench/bench_fig10_throughput_single.cc.o"
  "CMakeFiles/bench_fig10_throughput_single.dir/bench/bench_fig10_throughput_single.cc.o.d"
  "bench_fig10_throughput_single"
  "bench_fig10_throughput_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_throughput_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
