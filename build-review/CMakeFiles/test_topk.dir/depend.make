# Empty dependencies file for test_topk.
# This may be replaced when dependencies are built.
