file(REMOVE_RECURSE
  "CMakeFiles/test_topk.dir/tests/test_topk.cc.o"
  "CMakeFiles/test_topk.dir/tests/test_topk.cc.o.d"
  "test_topk"
  "test_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
