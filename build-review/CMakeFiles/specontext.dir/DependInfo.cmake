
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autoscale/controller.cc" "CMakeFiles/specontext.dir/src/autoscale/controller.cc.o" "gcc" "CMakeFiles/specontext.dir/src/autoscale/controller.cc.o.d"
  "/root/repo/src/autoscale/policy.cc" "CMakeFiles/specontext.dir/src/autoscale/policy.cc.o" "gcc" "CMakeFiles/specontext.dir/src/autoscale/policy.cc.o.d"
  "/root/repo/src/autoscale/slo.cc" "CMakeFiles/specontext.dir/src/autoscale/slo.cc.o" "gcc" "CMakeFiles/specontext.dir/src/autoscale/slo.cc.o.d"
  "/root/repo/src/core/dataflow.cc" "CMakeFiles/specontext.dir/src/core/dataflow.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/dataflow.cc.o.d"
  "/root/repo/src/core/elastic_loader.cc" "CMakeFiles/specontext.dir/src/core/elastic_loader.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/elastic_loader.cc.o.d"
  "/root/repo/src/core/live_engine.cc" "CMakeFiles/specontext.dir/src/core/live_engine.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/live_engine.cc.o.d"
  "/root/repo/src/core/memory_manager.cc" "CMakeFiles/specontext.dir/src/core/memory_manager.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/memory_manager.cc.o.d"
  "/root/repo/src/core/speculative.cc" "CMakeFiles/specontext.dir/src/core/speculative.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/speculative.cc.o.d"
  "/root/repo/src/core/system_model.cc" "CMakeFiles/specontext.dir/src/core/system_model.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/system_model.cc.o.d"
  "/root/repo/src/core/systems/eviction_system.cc" "CMakeFiles/specontext.dir/src/core/systems/eviction_system.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/systems/eviction_system.cc.o.d"
  "/root/repo/src/core/systems/full_attention_system.cc" "CMakeFiles/specontext.dir/src/core/systems/full_attention_system.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/systems/full_attention_system.cc.o.d"
  "/root/repo/src/core/systems/layerwise_baseline_system.cc" "CMakeFiles/specontext.dir/src/core/systems/layerwise_baseline_system.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/systems/layerwise_baseline_system.cc.o.d"
  "/root/repo/src/core/systems/specontext_system.cc" "CMakeFiles/specontext.dir/src/core/systems/specontext_system.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/systems/specontext_system.cc.o.d"
  "/root/repo/src/core/timing_engine.cc" "CMakeFiles/specontext.dir/src/core/timing_engine.cc.o" "gcc" "CMakeFiles/specontext.dir/src/core/timing_engine.cc.o.d"
  "/root/repo/src/kvcache/kv_cache.cc" "CMakeFiles/specontext.dir/src/kvcache/kv_cache.cc.o" "gcc" "CMakeFiles/specontext.dir/src/kvcache/kv_cache.cc.o.d"
  "/root/repo/src/kvcache/paged.cc" "CMakeFiles/specontext.dir/src/kvcache/paged.cc.o" "gcc" "CMakeFiles/specontext.dir/src/kvcache/paged.cc.o.d"
  "/root/repo/src/kvcache/prefix_tree.cc" "CMakeFiles/specontext.dir/src/kvcache/prefix_tree.cc.o" "gcc" "CMakeFiles/specontext.dir/src/kvcache/prefix_tree.cc.o.d"
  "/root/repo/src/model/config.cc" "CMakeFiles/specontext.dir/src/model/config.cc.o" "gcc" "CMakeFiles/specontext.dir/src/model/config.cc.o.d"
  "/root/repo/src/model/distiller.cc" "CMakeFiles/specontext.dir/src/model/distiller.cc.o" "gcc" "CMakeFiles/specontext.dir/src/model/distiller.cc.o.d"
  "/root/repo/src/model/tokenizer.cc" "CMakeFiles/specontext.dir/src/model/tokenizer.cc.o" "gcc" "CMakeFiles/specontext.dir/src/model/tokenizer.cc.o.d"
  "/root/repo/src/model/transformer.cc" "CMakeFiles/specontext.dir/src/model/transformer.cc.o" "gcc" "CMakeFiles/specontext.dir/src/model/transformer.cc.o.d"
  "/root/repo/src/model/weights.cc" "CMakeFiles/specontext.dir/src/model/weights.cc.o" "gcc" "CMakeFiles/specontext.dir/src/model/weights.cc.o.d"
  "/root/repo/src/obs/counters.cc" "CMakeFiles/specontext.dir/src/obs/counters.cc.o" "gcc" "CMakeFiles/specontext.dir/src/obs/counters.cc.o.d"
  "/root/repo/src/obs/export.cc" "CMakeFiles/specontext.dir/src/obs/export.cc.o" "gcc" "CMakeFiles/specontext.dir/src/obs/export.cc.o.d"
  "/root/repo/src/obs/json.cc" "CMakeFiles/specontext.dir/src/obs/json.cc.o" "gcc" "CMakeFiles/specontext.dir/src/obs/json.cc.o.d"
  "/root/repo/src/obs/sampler.cc" "CMakeFiles/specontext.dir/src/obs/sampler.cc.o" "gcc" "CMakeFiles/specontext.dir/src/obs/sampler.cc.o.d"
  "/root/repo/src/obs/trace.cc" "CMakeFiles/specontext.dir/src/obs/trace.cc.o" "gcc" "CMakeFiles/specontext.dir/src/obs/trace.cc.o.d"
  "/root/repo/src/retrieval/cluster_kv.cc" "CMakeFiles/specontext.dir/src/retrieval/cluster_kv.cc.o" "gcc" "CMakeFiles/specontext.dir/src/retrieval/cluster_kv.cc.o.d"
  "/root/repo/src/retrieval/h2o.cc" "CMakeFiles/specontext.dir/src/retrieval/h2o.cc.o" "gcc" "CMakeFiles/specontext.dir/src/retrieval/h2o.cc.o.d"
  "/root/repo/src/retrieval/quest.cc" "CMakeFiles/specontext.dir/src/retrieval/quest.cc.o" "gcc" "CMakeFiles/specontext.dir/src/retrieval/quest.cc.o.d"
  "/root/repo/src/retrieval/retrieval_head.cc" "CMakeFiles/specontext.dir/src/retrieval/retrieval_head.cc.o" "gcc" "CMakeFiles/specontext.dir/src/retrieval/retrieval_head.cc.o.d"
  "/root/repo/src/retrieval/shadow_kv.cc" "CMakeFiles/specontext.dir/src/retrieval/shadow_kv.cc.o" "gcc" "CMakeFiles/specontext.dir/src/retrieval/shadow_kv.cc.o.d"
  "/root/repo/src/serving/admission.cc" "CMakeFiles/specontext.dir/src/serving/admission.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/admission.cc.o.d"
  "/root/repo/src/serving/batch_sweep.cc" "CMakeFiles/specontext.dir/src/serving/batch_sweep.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/batch_sweep.cc.o.d"
  "/root/repo/src/serving/cluster.cc" "CMakeFiles/specontext.dir/src/serving/cluster.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/cluster.cc.o.d"
  "/root/repo/src/serving/metrics.cc" "CMakeFiles/specontext.dir/src/serving/metrics.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/metrics.cc.o.d"
  "/root/repo/src/serving/replica_engine.cc" "CMakeFiles/specontext.dir/src/serving/replica_engine.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/replica_engine.cc.o.d"
  "/root/repo/src/serving/request_queue.cc" "CMakeFiles/specontext.dir/src/serving/request_queue.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/request_queue.cc.o.d"
  "/root/repo/src/serving/router.cc" "CMakeFiles/specontext.dir/src/serving/router.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/router.cc.o.d"
  "/root/repo/src/serving/scheduler.cc" "CMakeFiles/specontext.dir/src/serving/scheduler.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/scheduler.cc.o.d"
  "/root/repo/src/serving/server.cc" "CMakeFiles/specontext.dir/src/serving/server.cc.o" "gcc" "CMakeFiles/specontext.dir/src/serving/server.cc.o.d"
  "/root/repo/src/sim/cost.cc" "CMakeFiles/specontext.dir/src/sim/cost.cc.o" "gcc" "CMakeFiles/specontext.dir/src/sim/cost.cc.o.d"
  "/root/repo/src/sim/event_clock.cc" "CMakeFiles/specontext.dir/src/sim/event_clock.cc.o" "gcc" "CMakeFiles/specontext.dir/src/sim/event_clock.cc.o.d"
  "/root/repo/src/sim/hardware.cc" "CMakeFiles/specontext.dir/src/sim/hardware.cc.o" "gcc" "CMakeFiles/specontext.dir/src/sim/hardware.cc.o.d"
  "/root/repo/src/sim/memory_model.cc" "CMakeFiles/specontext.dir/src/sim/memory_model.cc.o" "gcc" "CMakeFiles/specontext.dir/src/sim/memory_model.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "CMakeFiles/specontext.dir/src/sim/timeline.cc.o" "gcc" "CMakeFiles/specontext.dir/src/sim/timeline.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "CMakeFiles/specontext.dir/src/tensor/ops.cc.o" "gcc" "CMakeFiles/specontext.dir/src/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/specontext.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/specontext.dir/src/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/topk.cc" "CMakeFiles/specontext.dir/src/tensor/topk.cc.o" "gcc" "CMakeFiles/specontext.dir/src/tensor/topk.cc.o.d"
  "/root/repo/src/workload/longwriter.cc" "CMakeFiles/specontext.dir/src/workload/longwriter.cc.o" "gcc" "CMakeFiles/specontext.dir/src/workload/longwriter.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "CMakeFiles/specontext.dir/src/workload/metrics.cc.o" "gcc" "CMakeFiles/specontext.dir/src/workload/metrics.cc.o.d"
  "/root/repo/src/workload/tasks.cc" "CMakeFiles/specontext.dir/src/workload/tasks.cc.o" "gcc" "CMakeFiles/specontext.dir/src/workload/tasks.cc.o.d"
  "/root/repo/src/workload/trace.cc" "CMakeFiles/specontext.dir/src/workload/trace.cc.o" "gcc" "CMakeFiles/specontext.dir/src/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
