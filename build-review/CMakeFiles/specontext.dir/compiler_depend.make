# Empty compiler generated dependencies file for specontext.
# This may be replaced when dependencies are built.
