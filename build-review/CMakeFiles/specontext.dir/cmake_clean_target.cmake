file(REMOVE_RECURSE
  "libspecontext.a"
)
