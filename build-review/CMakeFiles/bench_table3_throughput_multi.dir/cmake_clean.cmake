file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_throughput_multi.dir/bench/bench_table3_throughput_multi.cc.o"
  "CMakeFiles/bench_table3_throughput_multi.dir/bench/bench_table3_throughput_multi.cc.o.d"
  "bench_table3_throughput_multi"
  "bench_table3_throughput_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_throughput_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
