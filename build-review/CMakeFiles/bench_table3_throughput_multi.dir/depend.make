# Empty dependencies file for bench_table3_throughput_multi.
# This may be replaced when dependencies are built.
