file(REMOVE_RECURSE
  "CMakeFiles/bench_serving_continuous.dir/bench/bench_serving_continuous.cc.o"
  "CMakeFiles/bench_serving_continuous.dir/bench/bench_serving_continuous.cc.o.d"
  "bench_serving_continuous"
  "bench_serving_continuous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
