# Empty dependencies file for bench_serving_continuous.
# This may be replaced when dependencies are built.
