# Empty dependencies file for test_live_engine.
# This may be replaced when dependencies are built.
