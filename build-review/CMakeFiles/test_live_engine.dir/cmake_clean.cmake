file(REMOVE_RECURSE
  "CMakeFiles/test_live_engine.dir/tests/test_live_engine.cc.o"
  "CMakeFiles/test_live_engine.dir/tests/test_live_engine.cc.o.d"
  "test_live_engine"
  "test_live_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_live_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
