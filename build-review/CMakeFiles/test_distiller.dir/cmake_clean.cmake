file(REMOVE_RECURSE
  "CMakeFiles/test_distiller.dir/tests/test_distiller.cc.o"
  "CMakeFiles/test_distiller.dir/tests/test_distiller.cc.o.d"
  "test_distiller"
  "test_distiller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distiller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
