# Empty compiler generated dependencies file for test_distiller.
# This may be replaced when dependencies are built.
