file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_longwriter.dir/bench/bench_fig09_longwriter.cc.o"
  "CMakeFiles/bench_fig09_longwriter.dir/bench/bench_fig09_longwriter.cc.o.d"
  "bench_fig09_longwriter"
  "bench_fig09_longwriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_longwriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
