# Empty compiler generated dependencies file for bench_fig09_longwriter.
# This may be replaced when dependencies are built.
