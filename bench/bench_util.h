/**
 * @file
 * Shared helpers for the experiment-reproduction benches: a fixed live
 * stack (tiny LLM + DLM), prompt builders, and table printing.
 *
 * Every bench regenerates one table or figure of the paper; the rows
 * and series printed here are compared against the paper in
 * EXPERIMENTS.md.
 */
#pragma once

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/live_engine.h"
#include "model/distiller.h"
#include "obs/json.h"
#include "retrieval/retrieval_head.h"
#include "tensor/rng.h"

namespace specontext {
namespace bench {

/** The live model stack shared by accuracy benches. */
struct LiveStack
{
    model::ModelConfig cfg;
    model::Transformer llm;
    model::Transformer dlm;
    core::LiveEngine engine;

    explicit LiveStack(uint64_t seed = 42,
                       model::AttentionKind kind =
                           model::AttentionKind::GQA)
        : cfg(model::tinyConfig(kind)),
          llm(model::Transformer::randomInit(cfg, seed)),
          dlm(model::distill(llm)), engine(llm)
    {
    }
};

/** Locally coherent random prompt (see workload/tasks.cc rationale). */
inline std::vector<int32_t>
coherentPrompt(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> out;
    out.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
        if (!out.empty() && rng.uniform() < 0.5) {
            const uint64_t back =
                rng.uniformInt(std::min<uint64_t>(8, out.size()));
            out.push_back(out[out.size() - 1 - back]);
        } else {
            out.push_back(
                static_cast<int32_t>(2 + rng.uniformInt(vocab - 2)));
        }
    }
    return out;
}

inline double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

/** Print a named section header. */
inline void
section(const std::string &title)
{
    std::printf("\n===== %s =====\n", title.c_str());
}

/**
 * Write a bench artifact as {"bench": ..., "hardware": ..., "rows":
 * [...]} — the shared writer of BENCH_*.json. Each entry of `rows` is
 * one complete JSON object (no trailing comma); build rows with
 * obs::JsonRow (and obs::jsonNumberArray for array fields) so key
 * escaping and the `": "` / `", "` formatting contract live in one
 * place.
 */
inline void
writeBenchJson(const std::string &path, const std::string &bench,
               const std::string &hardware,
               const std::vector<std::string> &rows)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::printf("cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"hardware\": \"%s\",\n"
                 "  \"rows\": [\n",
                 bench.c_str(), hardware.c_str());
    for (size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f, "    %s%s\n", rows[i].c_str(),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace bench
} // namespace specontext
