/**
 * @file
 * Figure 8: accuracy on the four LongBench-style tasks (2WikiMQA,
 * TriviaQA, HotpotQA, PassageCount) vs KV budget, for Quest,
 * ClusterKV, ShadowKV and SpeContext, with the full-attention line.
 *
 * Budgets are scaled to the live model's context by the same ratios
 * the paper uses against its 8B models (512/1024/2048/4096 of ~16K).
 */
#include "bench/bench_util.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/quest.h"
#include "retrieval/shadow_kv.h"
#include "workload/tasks.h"

using namespace specontext;

namespace {

double
scoreOf(bench::LiveStack &stack, const workload::QATask &task,
        const core::Reference &ref, const std::string &system,
        int64_t budget)
{
    if (system == "Quest") {
        retrieval::QuestRetriever r(budget, 16);
        return workload::scoreTask(task,
                                   stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "ClusterKV") {
        retrieval::ClusterKVRetriever r(budget, 16, 4);
        return workload::scoreTask(task,
                                   stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "ShadowKV") {
        retrieval::ShadowKVRetriever r(budget);
        return workload::scoreTask(task,
                                   stack.engine.runWithRetriever(ref, r))
            .score;
    }
    retrieval::RetrievalHead head(stack.dlm, {budget});
    return workload::scoreTask(
               task, stack.engine.runWithSpeContext(ref, head))
        .score;
}

} // namespace

int
main()
{
    bench::LiveStack stack;
    const int64_t ctx = 384; // live-scale stand-in for 16K
    workload::TaskGenerator gen(stack.cfg.vocab, 808);
    auto tasks = gen.all(ctx);
    // Paper budgets 512..4096 against 16K contexts of 32-layer trained
    // models. The 4-layer synthetic model reaches the same
    // accuracy-curve *phases* (degraded -> recovering -> converged to
    // full attention) at larger relative budgets, so the live budgets
    // are placed across that range; the mapping is documented in
    // EXPERIMENTS.md and identical for every system.
    const std::vector<std::pair<int64_t, int64_t>> budgets = {
        {512, ctx / 8}, {1024, ctx / 5}, {2048, ctx / 3},
        {4096, ctx / 2}};
    const char *systems[] = {"Quest", "ClusterKV", "ShadowKV",
                             "SpeContext"};

    for (auto &task : tasks) {
        task.answer_steps = 16;
        bench::section("Fig 8: " + task.name +
                       " (full attention = 100.0)");
        const auto ref = workload::taskReference(stack.engine, task);
        std::printf("%-12s", "budget");
        for (const char *s : systems)
            std::printf(" %12s", s);
        std::printf("\n");
        for (const auto &[paper_budget, live_budget] : budgets) {
            std::printf("%-12ld", paper_budget);
            for (const char *s : systems) {
                std::printf(" %12.1f",
                            scoreOf(stack, task, ref, s, live_budget));
            }
            std::printf("\n");
        }
    }
    std::printf("\n(paper shape: ours slightly below ClusterKV at the "
                "smallest budget, matching/above baselines and near "
                "full attention from ~1k up)\n");
    return 0;
}
