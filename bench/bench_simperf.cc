/**
 * @file
 * Simulator self-benchmark: how fast does the simulator itself run,
 * and does the fast path change a single simulated result?
 *
 * One 16-replica fleet (A800 8B SpeContext, LeastKvLoad routing)
 * serves one diurnal trace (default 100k requests, mean 8 req/s,
 * 4:1 peak:trough) three times:
 *
 *   legacy   — skip-ahead off: one scheduling round per event-loop
 *              iteration, the pre-fast-path execution model;
 *   fast     — skip-ahead on, single-threaded: each fired replica
 *              runs its whole pure-decode window in one step() call;
 *   parallel — skip-ahead on, N worker threads: independent
 *              pure-decode lanes step concurrently between
 *              router/control barriers.
 *
 * Every simulated output (placements, iteration count, makespan,
 * latency summary, replica-seconds) is asserted bitwise identical
 * across the three modes before any rate is reported — a fast result
 * that differs from the slow one is a wrong result, so the bench
 * fails instead of printing it.
 *
 * Reported per mode: wall seconds, simulated-seconds per wall-second
 * (the headline), decode iterations simulated per wall-second, heap
 * allocations per request (operator new interposed in this TU), and
 * speedup vs legacy. Writes BENCH_simperf.json.
 *
 * argv: [1] output json (default BENCH_simperf.json)
 *       [2] num_requests  (default 100000)
 *       [3] threads for the parallel mode (default 4)
 *       [4] optional floor on the fast mode's simulated-seconds per
 *           wall-second; exits 1 below it (CI regression gate).
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/cluster.h"
#include "workload/trace.h"

// ---- Allocation counter (this TU defines the global operators) ------
static std::atomic<int64_t> g_allocs{0};

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    rc.max_batch = 8;
    return rc;
}

struct ModeRow
{
    std::string mode;
    size_t threads = 1;
    double wall_s = 0.0;
    double sim_s = 0.0;
    int64_t iterations = 0;
    int64_t allocs = 0;
    serving::ClusterResult result;
};

ModeRow
runMode(const core::TimingEngine &engine, const std::string &mode,
        bool skip_ahead, size_t threads,
        const std::vector<serving::Request> &trace)
{
    serving::ClusterConfig cc;
    for (int i = 0; i < 16; ++i)
        cc.replicas.push_back(cloudReplica());
    cc.router.policy = serving::RouterPolicy::LeastKvLoad;
    // Legacy mode turns the whole fast path off — one-round-per-event
    // stepping AND per-iteration cost-model re-derivation, the pre-PR
    // execution profile this bench reports speedups against.
    cc.fast_path.skip_ahead = skip_ahead;
    cc.fast_path.cache_decode_costs = skip_ahead;
    cc.fast_path.threads = threads;
    const serving::Cluster cluster(engine, cc);

    ModeRow row;
    row.mode = mode;
    row.threads = threads;
    const int64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    row.result = cluster.run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    row.allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    row.wall_s =
        std::chrono::duration<double>(t1 - t0).count();
    row.sim_s = row.result.fleet.makespan_seconds;
    row.iterations = row.result.fleet.iterations;
    std::printf("  %-8s: wall %7.2f s, sim %10.1f s, "
                "%12.0f sim-s/wall-s\n",
                mode.c_str(), row.wall_s, row.sim_s,
                row.wall_s > 0.0 ? row.sim_s / row.wall_s : 0.0);
    return row;
}

/** Exit loudly on the first simulated output that differs — a faster
 *  wrong answer must never make it into a report. */
int g_mismatches = 0;

void
check(bool same, const char *what, const std::string &mode)
{
    if (same)
        return;
    std::printf("MISMATCH: %s differs between legacy and %s\n", what,
                mode.c_str());
    ++g_mismatches;
}

void
compareToLegacy(const ModeRow &legacy, const ModeRow &other)
{
    const serving::ClusterResult &a = legacy.result;
    const serving::ClusterResult &b = other.result;
    check(a.fleet.makespan_seconds == b.fleet.makespan_seconds,
          "makespan", other.mode);
    check(a.fleet.iterations == b.fleet.iterations, "iterations",
          other.mode);
    check(a.replica_seconds == b.replica_seconds, "replica_seconds",
          other.mode);
    check(a.placements.size() == b.placements.size(),
          "placement count", other.mode);
    for (size_t i = 0;
         i < a.placements.size() && i < b.placements.size(); ++i) {
        if (a.placements[i].request_id != b.placements[i].request_id ||
            a.placements[i].replica != b.placements[i].replica) {
            check(false, "placements", other.mode);
            break;
        }
    }
    const serving::ServingSummary sa = a.summary();
    const serving::ServingSummary sb = b.summary();
    check(sa.completed == sb.completed, "completed", other.mode);
    check(sa.total_generated_tokens == sb.total_generated_tokens,
          "generated tokens", other.mode);
    check(sa.ttft_mean == sb.ttft_mean, "ttft_mean", other.mode);
    check(sa.ttft_p99 == sb.ttft_p99, "ttft_p99", other.mode);
    check(sa.e2e_mean == sb.e2e_mean, "e2e_mean", other.mode);
    check(sa.e2e_p99 == sb.e2e_p99, "e2e_p99", other.mode);
    check(sa.tpot_mean == sb.tpot_mean, "tpot_mean", other.mode);
    check(sa.queue_delay_mean == sb.queue_delay_mean,
          "queue_delay_mean", other.mode);
    check(sa.throughput_tokens_per_s == sb.throughput_tokens_per_s,
          "throughput", other.mode);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_simperf.json";
    const int64_t num_requests =
        argc > 2 ? std::atoll(argv[2]) : 100000;
    const size_t threads =
        argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 4;
    const double floor_sim_per_wall =
        argc > 4 ? std::atof(argv[4]) : 0.0;
    core::TimingEngine engine;

    // Mean 8 req/s across a 16-replica fleet: the peak (~12.8 req/s)
    // keeps most lanes decoding, the trough (~3.2) leaves long
    // pure-decode windows — the regime million-request sweeps live in.
    workload::DiurnalTraceConfig dc;
    dc.base.num_requests = num_requests;
    dc.base.arrival_rate_per_s = 8.0;
    dc.base.seed = 17;
    const auto trace = workload::diurnalTrace(dc);

    bench::section("Simulator fast path: simulated seconds per "
                   "wall-clock second");
    std::printf("  fleet: 16x cloudA800 8B SpeContext, LeastKvLoad; "
                "trace: %lld diurnal requests\n",
                static_cast<long long>(num_requests));

    const ModeRow legacy =
        runMode(engine, "legacy", false, 1, trace);
    const ModeRow fast = runMode(engine, "fast", true, 1, trace);
    const ModeRow parallel =
        runMode(engine, "parallel", true, threads, trace);

    compareToLegacy(legacy, fast);
    compareToLegacy(legacy, parallel);
    if (g_mismatches > 0) {
        std::printf("FAIL: fast path changed simulated results\n");
        return 1;
    }
    std::printf("  all simulated outputs bitwise identical across "
                "modes\n");

    const std::vector<const ModeRow *> rows = {&legacy, &fast,
                                               &parallel};
    std::vector<std::string> json;
    for (const ModeRow *m : rows) {
        const double sim_per_wall =
            m->wall_s > 0.0 ? m->sim_s / m->wall_s : 0.0;
        const double events_per_s =
            m->wall_s > 0.0
                ? static_cast<double>(m->iterations) / m->wall_s
                : 0.0;
        const double allocs_per_req =
            num_requests > 0
                ? static_cast<double>(m->allocs) /
                      static_cast<double>(num_requests)
                : 0.0;
        obs::JsonRow row;
        row.str("mode", m->mode)
            .num("threads", static_cast<int64_t>(m->threads))
            .num("requests", num_requests)
            .num("completed", m->result.completed())
            .num("sim_seconds", m->sim_s, "%.3f")
            .num("wall_seconds", m->wall_s, "%.3f")
            .num("sim_s_per_wall_s", sim_per_wall, "%.1f")
            .num("decode_iterations", m->iterations)
            .num("iterations_per_wall_s", events_per_s, "%.0f")
            .num("allocs_total", m->allocs)
            .num("allocs_per_request", allocs_per_req, "%.2f")
            .num("speedup_vs_legacy",
                 m->wall_s > 0.0 ? legacy.wall_s / m->wall_s : 0.0,
                 "%.2f")
            .num("bitwise_identical_to_legacy", int64_t{1});
        json.push_back(row.render());
    }
    bench::writeBenchJson(out_path, "simperf", "host-cpu", json);

    const double fast_rate =
        fast.wall_s > 0.0 ? fast.sim_s / fast.wall_s : 0.0;
    std::printf("\nspeedup vs legacy: fast %.2fx, parallel(%zu) "
                "%.2fx; fast path simulates %.0f seconds per "
                "wall-second\n",
                fast.wall_s > 0.0 ? legacy.wall_s / fast.wall_s : 0.0,
                threads,
                parallel.wall_s > 0.0 ? legacy.wall_s / parallel.wall_s
                                      : 0.0,
                fast_rate);
    if (floor_sim_per_wall > 0.0 && fast_rate < floor_sim_per_wall) {
        std::printf("FAIL: fast mode below floor (%.1f < %.1f "
                    "sim-s/wall-s)\n",
                    fast_rate, floor_sim_per_wall);
        return 1;
    }
    return 0;
}
