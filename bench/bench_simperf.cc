/**
 * @file
 * Simulator self-benchmark: how fast does the simulator itself run,
 * and does the fast path change a single simulated result?
 *
 * One 16-replica fleet (A800 8B SpeContext, LeastKvLoad routing)
 * serves diurnal traces (mean 8 req/s, 4:1 peak:trough) at two
 * scales — the base sweep (default 100k requests) and a 10x
 * million-request sweep — in several engine modes:
 *
 *   legacy   — skip-ahead off: one scheduling round per event-loop
 *              iteration, the pre-fast-path execution model;
 *   fast     — skip-ahead on, single-threaded: each fired replica
 *              runs its whole pure-decode window in one step() call;
 *   parallel — skip-ahead on, N worker threads: era stepping walks
 *              every eligible pure-decode lane through its window per
 *              booking scan, sharded across the pool (inline on a
 *              single-core host — the era structure is the win);
 *   sharded  — era stepping with an explicit shard count (the base
 *              sweep sweeps 1/2/4 to pin shard-count invariance).
 *
 * Every simulated output (placements, iteration count, makespan,
 * latency summary, replica-seconds) is asserted bitwise identical
 * across all modes at each scale before any rate is reported — a
 * fast result that differs from the slow one is a wrong result, so
 * the bench fails instead of printing it.
 *
 * Reported per mode: wall seconds, simulated-seconds per wall-second
 * (the headline), decode iterations simulated per wall-second, heap
 * allocations per request (operator new interposed in this TU), and
 * speedup vs legacy. Writes BENCH_simperf.json.
 *
 * Regression gates (exit 1):
 *  - any bitwise mismatch against legacy at either scale;
 *  - fast mode below the optional sim-s/wall-s floor (argv[4]);
 *  - per-mode allocations/request above hard ceilings (large runs
 *    only — short traces are dominated by fixed setup costs);
 *  - the era path (parallel) slower than single-threaded fast on the
 *    big sweep (large runs only, where the gap is not timer noise).
 *
 * argv: [1] output json (default BENCH_simperf.json)
 *       [2] num_requests for the base sweep (default 100000); the
 *           big sweep always runs 10x this
 *       [3] threads for the parallel/sharded modes (default 4)
 *       [4] optional floor on the base-sweep fast mode's
 *           simulated-seconds per wall-second; exits 1 below it (CI
 *           regression gate).
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/cluster.h"
#include "workload/trace.h"

// ---- Allocation counter (this TU defines the global operators) ------
static std::atomic<int64_t> g_allocs{0};

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace specontext;

namespace {

/** Per-request allocation count below which gated runs are too short
 *  for stable ratios (and rate gaps are timer noise). */
constexpr int64_t kGateMinRequests = 20000;

/** Hard per-mode ceilings on allocations per request, ~2x the
 *  measured steady state (legacy ~850, fast/era ~4) so routine noise
 *  never trips them but a reintroduced per-iteration or per-request
 *  allocation does. */
double
allocCeiling(const std::string &mode)
{
    return mode == "legacy" ? 1800.0 : 12.0;
}

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    rc.max_batch = 8;
    return rc;
}

struct ModeRow
{
    std::string mode;
    size_t threads = 1;
    size_t shards = 0;
    int64_t requests = 0;
    double wall_s = 0.0;
    double sim_s = 0.0;
    int64_t iterations = 0;
    int64_t allocs = 0;
    serving::ClusterResult result;
};

ModeRow
runMode(const core::TimingEngine &engine, const std::string &mode,
        bool skip_ahead, size_t threads, size_t shards,
        const std::vector<serving::Request> &trace)
{
    serving::ClusterConfig cc;
    for (int i = 0; i < 16; ++i)
        cc.replicas.push_back(cloudReplica());
    cc.router.policy = serving::RouterPolicy::LeastKvLoad;
    // Legacy mode turns the whole fast path off — one-round-per-event
    // stepping AND per-iteration cost-model re-derivation, the pre-PR
    // execution profile this bench reports speedups against.
    cc.fast_path.skip_ahead = skip_ahead;
    cc.fast_path.cache_decode_costs = skip_ahead;
    cc.fast_path.threads = threads;
    cc.fast_path.shards = shards;
    const serving::Cluster cluster(engine, cc);

    ModeRow row;
    row.mode = mode;
    row.threads = threads;
    row.shards = shards;
    row.requests = static_cast<int64_t>(trace.size());
    const int64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    row.result = cluster.run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    row.allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    row.wall_s =
        std::chrono::duration<double>(t1 - t0).count();
    row.sim_s = row.result.fleet.makespan_seconds;
    row.iterations = row.result.fleet.iterations;
    std::printf("  %-8s: wall %7.2f s, sim %10.1f s, "
                "%12.0f sim-s/wall-s\n",
                mode.c_str(), row.wall_s, row.sim_s,
                row.wall_s > 0.0 ? row.sim_s / row.wall_s : 0.0);
    return row;
}

/** Exit loudly on the first simulated output that differs — a faster
 *  wrong answer must never make it into a report. */
int g_mismatches = 0;

void
check(bool same, const char *what, const std::string &mode)
{
    if (same)
        return;
    std::printf("MISMATCH: %s differs between legacy and %s\n", what,
                mode.c_str());
    ++g_mismatches;
}

void
compareToLegacy(const ModeRow &legacy, const ModeRow &other)
{
    const serving::ClusterResult &a = legacy.result;
    const serving::ClusterResult &b = other.result;
    check(a.fleet.makespan_seconds == b.fleet.makespan_seconds,
          "makespan", other.mode);
    check(a.fleet.iterations == b.fleet.iterations, "iterations",
          other.mode);
    check(a.replica_seconds == b.replica_seconds, "replica_seconds",
          other.mode);
    check(a.placements.size() == b.placements.size(),
          "placement count", other.mode);
    for (size_t i = 0;
         i < a.placements.size() && i < b.placements.size(); ++i) {
        if (a.placements[i].request_id != b.placements[i].request_id ||
            a.placements[i].replica != b.placements[i].replica) {
            check(false, "placements", other.mode);
            break;
        }
    }
    const serving::ServingSummary sa = a.summary();
    const serving::ServingSummary sb = b.summary();
    check(sa.completed == sb.completed, "completed", other.mode);
    check(sa.total_generated_tokens == sb.total_generated_tokens,
          "generated tokens", other.mode);
    check(sa.ttft_mean == sb.ttft_mean, "ttft_mean", other.mode);
    check(sa.ttft_p99 == sb.ttft_p99, "ttft_p99", other.mode);
    check(sa.e2e_mean == sb.e2e_mean, "e2e_mean", other.mode);
    check(sa.e2e_p99 == sb.e2e_p99, "e2e_p99", other.mode);
    check(sa.tpot_mean == sb.tpot_mean, "tpot_mean", other.mode);
    check(sa.queue_delay_mean == sb.queue_delay_mean,
          "queue_delay_mean", other.mode);
    check(sa.throughput_tokens_per_s == sb.throughput_tokens_per_s,
          "throughput", other.mode);
}

double
rate(const ModeRow &m)
{
    return m.wall_s > 0.0 ? m.sim_s / m.wall_s : 0.0;
}

std::vector<serving::Request>
diurnal(int64_t num_requests)
{
    // Mean 8 req/s across a 16-replica fleet: the peak (~12.8 req/s)
    // keeps most lanes decoding, the trough (~3.2) leaves long
    // pure-decode windows — the regime million-request sweeps live in.
    workload::DiurnalTraceConfig dc;
    dc.base.num_requests = num_requests;
    dc.base.arrival_rate_per_s = 8.0;
    dc.base.seed = 17;
    return workload::diurnalTrace(dc);
}

void
jsonRow(std::vector<std::string> &json, const ModeRow &m,
        const ModeRow &legacy)
{
    const double events_per_s =
        m.wall_s > 0.0
            ? static_cast<double>(m.iterations) / m.wall_s
            : 0.0;
    const double allocs_per_req =
        m.requests > 0 ? static_cast<double>(m.allocs) /
                             static_cast<double>(m.requests)
                       : 0.0;
    obs::JsonRow row;
    row.str("mode", m.mode)
        .num("threads", static_cast<int64_t>(m.threads))
        .num("shards", static_cast<int64_t>(m.shards))
        .num("requests", m.requests)
        .num("completed", m.result.completed())
        .num("sim_seconds", m.sim_s, "%.3f")
        .num("wall_seconds", m.wall_s, "%.3f")
        .num("sim_s_per_wall_s", rate(m), "%.1f")
        .num("decode_iterations", m.iterations)
        .num("iterations_per_wall_s", events_per_s, "%.0f")
        .num("allocs_total", m.allocs)
        .num("allocs_per_request", allocs_per_req, "%.2f")
        .num("speedup_vs_legacy",
             m.wall_s > 0.0 ? legacy.wall_s / m.wall_s : 0.0, "%.2f")
        .num("bitwise_identical_to_legacy", int64_t{1});
    json.push_back(row.render());
}

/** Allocation regression gate (large runs only). */
int
checkAllocs(const ModeRow &m)
{
    if (m.requests < kGateMinRequests)
        return 0;
    const double per_req = static_cast<double>(m.allocs) /
                           static_cast<double>(m.requests);
    if (per_req <= allocCeiling(m.mode))
        return 0;
    std::printf("FAIL: %s mode allocates %.2f/request "
                "(ceiling %.0f)\n",
                m.mode.c_str(), per_req, allocCeiling(m.mode));
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_simperf.json";
    const int64_t num_requests =
        argc > 2 ? std::atoll(argv[2]) : 100000;
    const size_t threads =
        argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 4;
    const double floor_sim_per_wall =
        argc > 4 ? std::atof(argv[4]) : 0.0;
    core::TimingEngine engine;

    bench::section("Simulator fast path: simulated seconds per "
                   "wall-clock second");

    // ---- Base sweep: every mode plus the shard-count sweep ----------
    std::printf("  fleet: 16x cloudA800 8B SpeContext, LeastKvLoad; "
                "trace: %lld diurnal requests\n",
                static_cast<long long>(num_requests));
    const auto trace = diurnal(num_requests);
    const ModeRow legacy =
        runMode(engine, "legacy", false, 1, 0, trace);
    const ModeRow fast = runMode(engine, "fast", true, 1, 0, trace);
    const ModeRow parallel =
        runMode(engine, "parallel", true, threads, 0, trace);
    std::vector<ModeRow> sharded;
    for (size_t s : {size_t{1}, size_t{2}, size_t{4}}) {
        std::printf("  shards=%zu\n", s);
        sharded.push_back(
            runMode(engine, "sharded", true, threads, s, trace));
    }
    compareToLegacy(legacy, fast);
    compareToLegacy(legacy, parallel);
    for (const ModeRow &m : sharded)
        compareToLegacy(legacy, m);

    // ---- Big sweep: 10x the base trace (a million requests at the
    // default), the scale-out row the headline quotes. ---------------
    const int64_t big_requests = num_requests * 10;
    std::printf("\n  big sweep: %lld diurnal requests\n",
                static_cast<long long>(big_requests));
    const auto big_trace = diurnal(big_requests);
    const ModeRow big_legacy =
        runMode(engine, "legacy", false, 1, 0, big_trace);
    const ModeRow big_fast =
        runMode(engine, "fast", true, 1, 0, big_trace);
    const ModeRow big_parallel =
        runMode(engine, "parallel", true, threads, 0, big_trace);
    compareToLegacy(big_legacy, big_fast);
    compareToLegacy(big_legacy, big_parallel);

    if (g_mismatches > 0) {
        std::printf("FAIL: fast path changed simulated results\n");
        return 1;
    }
    std::printf("  all simulated outputs bitwise identical across "
                "modes at both scales\n");

    std::vector<std::string> json;
    jsonRow(json, legacy, legacy);
    jsonRow(json, fast, legacy);
    jsonRow(json, parallel, legacy);
    for (const ModeRow &m : sharded)
        jsonRow(json, m, legacy);
    jsonRow(json, big_legacy, big_legacy);
    jsonRow(json, big_fast, big_legacy);
    jsonRow(json, big_parallel, big_legacy);
    bench::writeBenchJson(out_path, "simperf", "host-cpu", json);

    int failures = 0;
    for (const ModeRow *m :
         {&legacy, &fast, &parallel, &big_legacy, &big_fast,
          &big_parallel})
        failures += checkAllocs(*m);
    for (const ModeRow &m : sharded)
        failures += checkAllocs(m);

    // Era stepping must pay for itself: on the big sweep (where the
    // gap cannot be timer noise) the parallel mode has to beat the
    // single-threaded fast mode, whatever the host's core count — the
    // inline era is a strict improvement even on one core.
    if (big_requests >= kGateMinRequests &&
        rate(big_parallel) <= rate(big_fast)) {
        std::printf("FAIL: parallel (era) mode no faster than fast "
                    "(%.1f <= %.1f sim-s/wall-s) on the big sweep\n",
                    rate(big_parallel), rate(big_fast));
        ++failures;
    }

    std::printf("\nspeedup vs legacy: fast %.2fx, parallel(%zu) "
                "%.2fx; big sweep: fast %.0f, parallel %.0f "
                "sim-s/wall-s\n",
                fast.wall_s > 0.0 ? legacy.wall_s / fast.wall_s : 0.0,
                threads,
                parallel.wall_s > 0.0 ? legacy.wall_s / parallel.wall_s
                                      : 0.0,
                rate(big_fast), rate(big_parallel));
    if (floor_sim_per_wall > 0.0 && rate(fast) < floor_sim_per_wall) {
        std::printf("FAIL: fast mode below floor (%.1f < %.1f "
                    "sim-s/wall-s)\n",
                    rate(fast), floor_sim_per_wall);
        ++failures;
    }
    return failures > 0 ? 1 : 0;
}
