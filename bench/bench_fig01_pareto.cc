/**
 * @file
 * Figure 1(a)(b): Pareto frontiers of normalized accuracy vs
 * normalized throughput for KV-selection systems in the long-context
 * input and long-context reasoning scenarios.
 *
 * Accuracy comes from live runs of the tiny stack (score vs full
 * attention); throughput from the analytical simulator at the paper's
 * scale (8B geometry, 4 requests, 16K). Both axes are normalized to
 * full attention, matching the paper's plot.
 */
#include "bench/bench_util.h"
#include "core/timing_engine.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/quest.h"
#include "retrieval/shadow_kv.h"
#include "workload/tasks.h"

using namespace specontext;

namespace {

struct Point
{
    std::string system;
    int64_t budget;
    double accuracy;   // live task score, 0-100
    double throughput; // simulated tokens/s
};

double
liveScore(bench::LiveStack &stack, const workload::QATask &task,
          const core::Reference &ref, const std::string &system,
          int64_t budget)
{
    if (system == "Quest") {
        retrieval::QuestRetriever r(budget, 16);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "ClusterKV") {
        retrieval::ClusterKVRetriever r(budget, 16, 4);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "ShadowKV") {
        retrieval::ShadowKVRetriever r(budget);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    retrieval::RetrievalHead head(stack.dlm, {budget});
    return workload::scoreTask(
               task, stack.engine.runWithSpeContext(ref, head))
        .score;
}

double
simThroughput(core::SystemKind sys, bool reasoning)
{
    core::TimingEngine te;
    core::TimingConfig tc;
    tc.llm = model::llama31_8bGeometry();
    tc.hw = sim::HardwareSpec::cloudA800();
    tc.system = sys;
    tc.batch = (sys == core::SystemKind::Quest ||
                sys == core::SystemKind::ClusterKV)
                   ? 1
                   : 4;
    tc.budget = 2048;
    // Fig. 1's setting: 4 requests, 16K total length.
    tc.prompt_len = reasoning ? 2048 : 14336;
    tc.gen_len = reasoning ? 14336 : 2048;
    const auto r = te.simulate(tc);
    // Per-request throughput so single-request systems are comparable.
    return r.oom ? 0.0 : r.throughput / static_cast<double>(tc.batch);
}

void
scenario(bool reasoning)
{
    bench::section(reasoning
                       ? "Fig 1(b): long-context reasoning Pareto"
                       : "Fig 1(a): long-context input Pareto");

    bench::LiveStack stack;
    workload::TaskGenerator gen(stack.cfg.vocab, 101);
    // Input scenario: long document, short answer. Reasoning: short
    // instruction, long generation.
    auto task = reasoning ? gen.hotpotQa(64) : gen.hotpotQa(288);
    task.answer_steps = reasoning ? 48 : 16;
    const auto ref = workload::taskReference(stack.engine, task);

    const double full_acc = 100.0;
    const double full_tp =
        simThroughput(core::SystemKind::FlashInfer, reasoning);

    std::printf("%-12s %8s %10s %10s   (normalized to FlashInfer full "
                "attention)\n",
                "system", "budget", "norm-acc", "norm-tput");
    std::printf("%-12s %8s %10.3f %10.3f\n", "FullAttn", "-", 1.0, 1.0);

    const std::vector<std::pair<std::string, core::SystemKind>> systems =
        {{"Quest", core::SystemKind::Quest},
         {"ClusterKV", core::SystemKind::ClusterKV},
         {"ShadowKV", core::SystemKind::ShadowKV},
         {"SpeContext", core::SystemKind::SpeContext}};

    // Budgets 1024/2048 in the paper. A 4-layer synthetic model needs
    // a larger relative budget than a trained 32-layer 8B model for
    // the same fidelity, so the live budgets are chosen where the
    // tiny model's accuracy/budget curve has the same character as
    // the paper's (documented in EXPERIMENTS.md): roughly 1/4 and 1/2
    // of the live context for the input scenario, and budgets around
    // the total sequence for the reasoning scenario (where the
    // paper's 1024/2048 budgets also exceed the ~100-token prompt).
    const int64_t live_ctx = static_cast<int64_t>(task.prompt.size()) +
                             task.answer_steps;
    const std::vector<std::pair<int64_t, int64_t>> budget_map =
        reasoning ? std::vector<std::pair<int64_t, int64_t>>{
                        {1024, live_ctx / 2}, {2048, live_ctx}}
                  : std::vector<std::pair<int64_t, int64_t>>{
                        {1024, live_ctx / 4}, {2048, live_ctx / 2}};
    for (const auto &[name, kind] : systems) {
        for (const auto &[paper_budget, live_budget] : budget_map) {
            const double acc =
                liveScore(stack, task, ref, name, live_budget);
            const double tp = simThroughput(kind, reasoning);
            std::printf("%-12s %8ld %10.3f %10.3f\n", name.c_str(),
                        paper_budget, acc / full_acc, tp / full_tp);
        }
    }
}

} // namespace

int
main()
{
    scenario(false);
    scenario(true);
    std::printf("\nExpected shape (paper Fig. 1): in (a) sparse systems "
                "cluster near full-attention accuracy with >1 "
                "normalized throughput;\nin (b) baselines drop below "
                "1.0 throughput (retrieval overhead + retained KV) "
                "while SpeContext stays top-right.\n");
    return 0;
}
