/**
 * @file
 * Figure 1(a)(b): Pareto frontiers of normalized accuracy vs
 * normalized throughput for KV-selection systems in the long-context
 * input and long-context reasoning scenarios.
 *
 * Accuracy comes from live runs of the tiny stack (score vs full
 * attention); throughput from the analytical simulator at the paper's
 * scale (8B geometry, 4 requests, 16K). Both axes are normalized to
 * full attention, matching the paper's plot.
 *
 * The system list is SystemRegistry::names() — every registered system
 * with a live accuracy path (including the H2O and StreamingLLM
 * permanent-eviction baselines) lands on the frontier; systems without
 * a liveScore() branch are listed with a visible "no live accuracy
 * path" note. Writes machine-readable curves to BENCH_pareto.json
 * (override with argv[1]).
 */
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/timing_engine.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/h2o.h"
#include "retrieval/quest.h"
#include "retrieval/shadow_kv.h"
#include "retrieval/streaming_llm.h"
#include "workload/tasks.h"

using namespace specontext;

namespace {

struct Point
{
    std::string scenario;
    std::string system;
    int64_t budget;
    double norm_acc;
    double norm_tput;
};

std::vector<Point> g_points;

/** Live tiny-stack accuracy of `system` at `budget`; negative when the
 *  system has no live accuracy path. */
double
liveScore(bench::LiveStack &stack, const workload::QATask &task,
          const core::Reference &ref, const std::string &system,
          int64_t budget)
{
    if (system == "Quest") {
        retrieval::QuestRetriever r(budget, 16);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "ClusterKV") {
        retrieval::ClusterKVRetriever r(budget, 16, 4);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "ShadowKV") {
        retrieval::ShadowKVRetriever r(budget);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "H2O") {
        retrieval::H2ORetriever r(budget);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "StreamingLLM") {
        retrieval::StreamingLLMRetriever r(budget);
        return workload::scoreTask(
                   task, stack.engine.runWithRetriever(ref, r))
            .score;
    }
    if (system == "SpeContext") {
        retrieval::RetrievalHead head(stack.dlm, {budget});
        return workload::scoreTask(
                   task, stack.engine.runWithSpeContext(ref, head))
            .score;
    }
    return -1.0;
}

double
simThroughput(const std::string &system, bool reasoning, int64_t budget)
{
    core::TimingEngine te;
    core::SystemOptions opts;
    opts.budget = budget;
    core::TimingConfig tc;
    tc.llm = model::geometryPreset("Llama3.1-8B");
    tc.hw = sim::HardwareSpec::cloudA800();
    tc.system = core::SystemRegistry::create(system, opts);
    // Fig. 1's setting: 4 requests, 16K total length — capped at what
    // the system can simulate (Quest/ClusterKV are single-request).
    tc.batch = std::min<int64_t>(4, tc.system->maxSimulatedBatch());
    tc.prompt_len = reasoning ? 2048 : 14336;
    tc.gen_len = reasoning ? 14336 : 2048;
    const auto r = te.simulate(tc);
    // Per-request throughput so single-request systems are comparable.
    return r.oom ? 0.0 : r.throughput / static_cast<double>(tc.batch);
}

void
scenario(bool reasoning)
{
    bench::section(reasoning
                       ? "Fig 1(b): long-context reasoning Pareto"
                       : "Fig 1(a): long-context input Pareto");

    bench::LiveStack stack;
    workload::TaskGenerator gen(stack.cfg.vocab, 101);
    // Input scenario: long document, short answer. Reasoning: short
    // instruction, long generation.
    auto task = reasoning ? gen.hotpotQa(64) : gen.hotpotQa(288);
    task.answer_steps = reasoning ? 48 : 16;
    const auto ref = workload::taskReference(stack.engine, task);
    const char *scen = reasoning ? "reasoning" : "input";

    const double full_acc = 100.0;
    const double full_tp =
        simThroughput("FullAttn(FlashInfer)", reasoning, 2048);

    std::printf("%-12s %8s %10s %10s   (normalized to FlashInfer full "
                "attention)\n",
                "system", "budget", "norm-acc", "norm-tput");
    std::printf("%-12s %8s %10.3f %10.3f\n", "FullAttn", "-", 1.0, 1.0);
    g_points.push_back({scen, "FullAttn(FlashInfer)", -1, 1.0, 1.0});

    // Budgets 1024/2048 in the paper. A 4-layer synthetic model needs
    // a larger relative budget than a trained 32-layer 8B model for
    // the same fidelity, so the live budgets are chosen where the
    // tiny model's accuracy/budget curve has the same character as
    // the paper's (documented in EXPERIMENTS.md): roughly 1/4 and 1/2
    // of the live context for the input scenario, and budgets around
    // the total sequence for the reasoning scenario (where the
    // paper's 1024/2048 budgets also exceed the ~100-token prompt).
    const int64_t live_ctx = static_cast<int64_t>(task.prompt.size()) +
                             task.answer_steps;
    const std::vector<std::pair<int64_t, int64_t>> budget_map =
        reasoning ? std::vector<std::pair<int64_t, int64_t>>{
                        {1024, live_ctx / 2}, {2048, live_ctx}}
                  : std::vector<std::pair<int64_t, int64_t>>{
                        {1024, live_ctx / 4}, {2048, live_ctx / 2}};
    for (const std::string &name : core::SystemRegistry::names()) {
        // Full-attention variants are the normalization anchor, not
        // Pareto curves.
        if (name.rfind("FullAttn", 0) == 0)
            continue;
        for (const auto &[paper_budget, live_budget] : budget_map) {
            const double acc =
                liveScore(stack, task, ref, name, live_budget);
            if (acc < 0.0) {
                // Registered but not wired into liveScore() above —
                // say so instead of silently shrinking the frontier.
                std::printf("%-12s %8ld %10s %10s   (no live accuracy "
                            "path; add it to liveScore())\n",
                            name.c_str(), paper_budget, "-", "-");
                break;
            }
            const double tp =
                simThroughput(name, reasoning, paper_budget);
            std::printf("%-12s %8ld %10.3f %10.3f\n", name.c_str(),
                        paper_budget, acc / full_acc, tp / full_tp);
            g_points.push_back(
                {scen, name, paper_budget, acc / full_acc, tp / full_tp});
        }
    }
}

void
writeJson(const std::string &path)
{
    std::vector<std::string> rows;
    rows.reserve(g_points.size());
    for (const Point &p : g_points) {
        obs::JsonRow row;
        row.str("scenario", p.scenario)
            .str("system", p.system)
            .num("budget", p.budget)
            .num("norm_acc", p.norm_acc, "%.4f")
            .num("norm_tput", p.norm_tput, "%.4f");
        rows.push_back(row.render());
    }
    bench::writeBenchJson(path, "fig01_pareto", "cloudA800", rows);
}

} // namespace

int
main(int argc, char **argv)
{
    scenario(false);
    scenario(true);
    std::printf("\nExpected shape (paper Fig. 1): in (a) sparse systems "
                "cluster near full-attention accuracy with >1 "
                "normalized throughput;\nin (b) baselines drop below "
                "1.0 throughput (retrieval overhead + retained KV) "
                "while SpeContext stays top-right.\nPermanent-eviction "
                "systems (H2O, StreamingLLM) sit far right (no "
                "retrieval, bounded KV) but lower (irreversible "
                "eviction).\n");
    writeJson(argc > 1 ? argv[1] : "BENCH_pareto.json");
    return 0;
}
