/**
 * @file
 * Cost-normalized goodput of SLO-driven autoscaling vs static fleets
 * on non-stationary arrival processes — the headline number of the
 * autoscale:: control plane.
 *
 * Two traces, one replica shape (A800 8B SpeContext):
 *  1. Diurnal: one smooth day curve (mean 2.0 req/s, peak:trough 4:1,
 *     600 s period). A fleet sized for the peak idles at the trough; a
 *     fleet sized for the trough drowns at the peak. Static fleets of
 *     1..4 replicas bracket both failure modes.
 *  2. Flash crowd: steady 0.8 req/s with a 6x burst for 120 s — the
 *     shape that punishes slow scale-up (warmup = provisioning +
 *     weight load over PCIe, priced by replicaWarmupSeconds()).
 *
 * Each static fleet is scored against three elastic configurations
 * (min 1 / max 4 replicas) driven by the autoscale::Controller over
 * the obs:: layer: threshold hysteresis, queue-theoretic target
 * utilization, and step-ahead predictive scaling.
 *
 * The score is **cost-normalized goodput**: generated tokens of
 * completed requests whose TTFT met the SLO target, divided by
 * replica-seconds paid (attach -> retire, warmup included). Raw
 * tokens-per-replica-second would crown a saturated single replica —
 * batching efficiency peaks exactly when latency is worst — so the
 * numerator only counts tokens the SLO makes sellable. An autoscaling
 * policy must beat every static fleet on the diurnal trace while
 * holding p99 TTFT under the target; the static rows show why: small
 * fleets blow the SLO at the peak (numerator collapses), big fleets
 * pay for idle replicas at the trough (denominator bloats).
 *
 * Writes BENCH_autoscale.json (override with argv[1]); argv[2]
 * shrinks the traces for CI smoke runs.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "autoscale/controller.h"
#include "bench/bench_util.h"
#include "obs/export.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

/** TTFT the goodput gate and the controller steer against. */
constexpr double kTtftSloSeconds = 25.0;

/** Instance-provisioning latency ahead of every scale-up's weight
 *  load: scale-up is never free, and a policy that reacts late eats
 *  the whole queue spike while the replica warms. */
constexpr double kProvisionSeconds = 15.0;

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    // Small enough that overload *queues* (the pressure signal the
    // controller polls) instead of vanishing into one giant batch.
    rc.max_batch = 8;
    return rc;
}

autoscale::SloConfig
slo()
{
    autoscale::SloConfig s;
    s.ttft_p99_target_seconds = kTtftSloSeconds;
    s.queue_depth_high = 4.0;
    s.queue_depth_low = 0.5;
    return s;
}

struct Row
{
    std::string trace;
    std::string config;
    int64_t replicas_min = 0;
    int64_t replicas_max = 0;
    serving::ServingSummary s;
    int64_t rejected = 0;
    int64_t total_tokens = 0;
    int64_t goodput_tokens = 0; ///< tokens of SLO-met requests
    int64_t slo_met_requests = 0;
    double replica_seconds = 0.0;
    double cost_goodput = 0.0; ///< goodput_tokens / replica_seconds
    bool meets_slo = false;    ///< ttft_p99 <= target
    int64_t scale_events = 0;
    int64_t peak_live = 0;
    int64_t decisions = 0;
};

/** Fill the SLO-gated numerator and the cost ratio from a result. */
void
score(Row &row, const serving::ClusterResult &r)
{
    row.s = r.summary();
    row.rejected = static_cast<int64_t>(r.fleet.rejected.size());
    for (const serving::RequestRecord &rec :
         r.fleet.metrics.records()) {
        row.total_tokens += rec.gen_len;
        if (rec.ttft() <= kTtftSloSeconds) {
            row.goodput_tokens += rec.gen_len;
            ++row.slo_met_requests;
        }
    }
    row.replica_seconds = r.replica_seconds;
    row.cost_goodput =
        row.replica_seconds > 0.0
            ? static_cast<double>(row.goodput_tokens) /
                  row.replica_seconds
            : 0.0;
    row.meets_slo = row.s.ttft_p99 <= kTtftSloSeconds;
    row.scale_events = static_cast<int64_t>(r.scale_events.size());
    for (const serving::ScaleEvent &e : r.scale_events)
        row.peak_live = std::max(
            row.peak_live, static_cast<int64_t>(e.live_after));
}

Row
runStatic(const core::TimingEngine &engine, const std::string &trace_name,
          int64_t replicas, const std::vector<serving::Request> &trace)
{
    serving::ClusterConfig cc;
    for (int64_t i = 0; i < replicas; ++i)
        cc.replicas.push_back(cloudReplica());
    const serving::ClusterResult r =
        serving::Cluster(engine, cc).run(trace);
    Row row;
    row.trace = trace_name;
    row.config = "static-" + std::to_string(replicas);
    row.replicas_min = row.replicas_max = replicas;
    score(row, r);
    row.peak_live = replicas;
    return row;
}

Row
runElastic(const core::TimingEngine &engine,
           const std::string &trace_name, autoscale::ScalePolicy &policy,
           const std::vector<serving::Request> &trace)
{
    obs::CounterRegistry counters;
    obs::TimeseriesSamplerConfig sc;
    sc.interval_seconds = 5.0;
    obs::TimeseriesSampler sampler(&counters, sc);

    autoscale::ControllerConfig ctl;
    ctl.slo = slo();
    ctl.policy = &policy;
    ctl.counters = &counters;
    ctl.sampler = &sampler;
    autoscale::Controller controller(ctl);

    serving::ClusterConfig cc;
    cc.replicas = {cloudReplica()};
    cc.obs.counters = &counters;
    cc.obs.sampler = &sampler;
    cc.elastic.controller = &controller;
    cc.elastic.min_replicas = 1;
    cc.elastic.max_replicas = 4;
    cc.elastic.control_period_seconds = 5.0;
    cc.elastic.provision_seconds = kProvisionSeconds;
    const serving::ClusterResult r =
        serving::Cluster(engine, cc).run(trace);

    Row row;
    row.trace = trace_name;
    row.config = std::string("elastic-") + policy.name();
    row.replicas_min = 1;
    row.replicas_max = 4;
    score(row, r);
    row.decisions =
        static_cast<int64_t>(controller.decisions().size());
    return row;
}

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-12s %-26s %8s %9s %7s %10s %10s %10s %5s %4s\n",
                "trace", "config", "ttft_p99", "slo_att", "rep_s",
                "tokens", "good_tok", "good/rep_s", "peak", "slo");
    for (const Row &r : rows) {
        const double att =
            r.s.completed > 0
                ? static_cast<double>(r.slo_met_requests) /
                      static_cast<double>(r.s.completed)
                : 0.0;
        std::printf(
            "%-12s %-26s %8.1f %8.1f%% %7.0f %10ld %10ld %10.2f %5ld "
            "%4s\n",
            r.trace.c_str(), r.config.c_str(), r.s.ttft_p99,
            100.0 * att, r.replica_seconds, r.total_tokens,
            r.goodput_tokens, r.cost_goodput, r.peak_live,
            r.meets_slo ? "yes" : "NO");
    }
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Row &r : rows) {
        const double att =
            r.s.completed > 0
                ? static_cast<double>(r.slo_met_requests) /
                      static_cast<double>(r.s.completed)
                : 0.0;
        obs::JsonRow row;
        row.str("trace", r.trace)
            .str("config", r.config)
            .num("replicas_min", r.replicas_min)
            .num("replicas_max", r.replicas_max)
            .num("slo_ttft_target_s", kTtftSloSeconds, "%.1f")
            .num("completed", r.s.completed)
            .num("rejected", r.rejected)
            .num("ttft_p50_s", r.s.ttft_p50, "%.3f")
            .num("ttft_p99_s", r.s.ttft_p99, "%.3f")
            .num("e2e_p99_s", r.s.e2e_p99, "%.3f")
            .num("slo_met_requests", r.slo_met_requests)
            .num("slo_attainment", att, "%.4f")
            .num("total_generated_tokens", r.total_tokens)
            .num("goodput_tokens", r.goodput_tokens)
            .num("makespan_s", r.s.makespan_seconds, "%.2f")
            .num("replica_seconds", r.replica_seconds, "%.2f")
            .num("cost_normalized_goodput_tok_per_replica_s",
                 r.cost_goodput, "%.3f")
            .num("meets_ttft_p99_slo",
                 static_cast<int64_t>(r.meets_slo ? 1 : 0))
            .num("peak_live_replicas", r.peak_live)
            .num("scale_events", r.scale_events)
            .num("control_decisions", r.decisions);
        out.push_back(row.render());
    }
    bench::writeBenchJson(path, "autoscale", "cloudA800", out);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_autoscale.json";
    const int64_t num_requests =
        argc > 2 ? std::atoll(argv[2]) : 1200;
    core::TimingEngine engine;

    // Diurnal: mean 2 req/s over a 600 s day, 4:1 peak:trough — the
    // peak (~3.2 req/s) saturates two replicas, the trough (~0.8)
    // under-fills one.
    workload::DiurnalTraceConfig dc;
    dc.base.num_requests = num_requests;
    dc.base.arrival_rate_per_s = 2.0;
    dc.base.seed = 23;
    const auto diurnal = workload::diurnalTrace(dc);

    // Flash crowd: 0.8 req/s baseline, 6x for 120 s starting at 180 s
    // (~4.8 req/s inside the burst — beyond three replicas' knee).
    workload::FlashCrowdTraceConfig fc;
    fc.base.num_requests = (num_requests * 4) / 5;
    fc.base.arrival_rate_per_s = 0.8;
    fc.base.seed = 23;
    fc.burst_start_seconds = 180.0;
    fc.burst_duration_seconds = 120.0;
    fc.burst_multiplier = 6.0;
    const auto flash = workload::flashCrowdTrace(fc);

    std::vector<Row> rows;
    const std::vector<
        std::pair<std::string, const std::vector<serving::Request> *>>
        traces = {{"diurnal", &diurnal}, {"flash-crowd", &flash}};
    for (const auto &[name, trace_ptr] : traces) {
        const auto &trace = *trace_ptr;
        for (int64_t n : {1, 2, 3, 4})
            rows.push_back(runStatic(engine, name, n, trace));
        // Scale-down patience is sized against the provisioning cost:
        // with 15 s paid per attach, flapping around the watermark is
        // pure waste, so a replica must sit idle for a full minute
        // (12 ticks x 5 s) before it is given back.
        {
            autoscale::ThresholdPolicyConfig pc;
            pc.consecutive_low_ticks = 12;
            autoscale::ThresholdPolicy p(pc);
            rows.push_back(runElastic(engine, name, p, trace));
        }
        {
            autoscale::TargetUtilizationPolicyConfig pc;
            pc.ewma_alpha = 0.15;
            autoscale::TargetUtilizationPolicy p(pc);
            rows.push_back(runElastic(engine, name, p, trace));
        }
        {
            autoscale::PredictivePolicyConfig pc;
            pc.lookahead_seconds = 30.0;
            pc.consecutive_low_ticks = 12;
            autoscale::PredictivePolicy p(pc);
            rows.push_back(runElastic(engine, name, p, trace));
        }
    }

    bench::section("Autoscaling: static fleets vs SLO-driven elastic "
                   "scaling (cost-normalized goodput)");
    printRows(rows);
    std::printf(
        "\nNotes: goodput counts generated tokens of requests whose "
        "TTFT met the %.0f s SLO;\ncost normalizes by replica-seconds "
        "paid (warmup included, provision %.0f s per\nscale-up). Small "
        "static fleets blow the SLO at the peak; big ones pay for idle\n"
        "replicas at the trough. The elastic rows ride the curve with "
        "min 1 / max 4 replicas.\n",
        kTtftSloSeconds, kProvisionSeconds);
    writeJson(rows, out_path);
    return 0;
}
