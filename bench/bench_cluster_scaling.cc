/**
 * @file
 * Fleet-sizing sweep of the multi-replica cluster: replica count x
 * router policy x fleet mix on open-loop Poisson traces — the repo's
 * central capacity question ("how many replicas of which hardware does
 * a given load need to hold p99 TTFT?") made machine-readable.
 *
 * Three sweeps on the mixed-length trace:
 *  1. Homogeneous A800 scaling: 1/2/4 replicas under round-robin and
 *     join-shortest-queue — throughput should scale near-linearly
 *     until the arrival process, not the fleet, is the bottleneck.
 *  2. Heterogeneous fleet (2x A800 8B + 2x RTX 4060 1B): all four
 *     router policies. Load-aware routing (least-kv-load, two-tier)
 *     must beat oblivious round-robin on p99 TTFT, because round-robin
 *     keeps handing long prompts to the edge replicas whose prefill is
 *     an order of magnitude slower.
 *  3. Router vs static splitting: the same fleet served from a
 *     splitTrace() partition (one shard per replica, no router) as the
 *     offline baseline.
 *
 * Writes BENCH_cluster.json (override with argv[1]); argv[2] shrinks
 * the trace for CI smoke runs.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    rc.max_batch = 64;
    return rc;
}

serving::ReplicaConfig
edgeReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::reasoningLlama32_1bGeometry();
    rc.timing.hw = sim::HardwareSpec::edge4060();
    rc.timing.system = core::SystemRegistry::create("SpeContext");
    rc.max_batch = 16;
    return rc;
}

std::vector<serving::ReplicaConfig>
makeFleet(const std::string &mix, int64_t replicas)
{
    std::vector<serving::ReplicaConfig> fleet;
    if (mix == "A800") {
        for (int64_t i = 0; i < replicas; ++i)
            fleet.push_back(cloudReplica());
    } else { // "A800+4060": half cloud, half edge
        for (int64_t i = 0; i < replicas; ++i)
            fleet.push_back(i < replicas / 2 ? cloudReplica()
                                             : edgeReplica());
    }
    return fleet;
}

struct Row
{
    std::string fleet;
    std::string policy;
    int64_t replicas = 0;
    serving::ServingSummary s;
    int64_t rejected = 0;
    std::vector<int64_t> per_replica_completed;
};

Row
runOne(const core::TimingEngine &engine, const std::string &mix,
       int64_t replicas, serving::RouterPolicy policy,
       const std::vector<serving::Request> &trace)
{
    serving::ClusterConfig cc;
    cc.replicas = makeFleet(mix, replicas);
    cc.router.policy = policy;
    const serving::ClusterResult r =
        serving::Cluster(engine, cc).run(trace);
    Row row;
    row.fleet = mix;
    row.policy = serving::routerPolicyName(policy);
    row.replicas = replicas;
    row.s = r.summary();
    row.rejected = static_cast<int64_t>(r.fleet.rejected.size());
    for (const serving::ServeResult &pr : r.per_replica)
        row.per_replica_completed.push_back(pr.completed());
    return row;
}

/** Static-splitting baseline: one shard per replica, no router. */
Row
runSplitBaseline(const core::TimingEngine &engine,
                 const std::string &mix, int64_t replicas,
                 const std::vector<serving::Request> &trace)
{
    const auto fleet = makeFleet(mix, replicas);
    const auto shards =
        workload::splitTrace(trace, static_cast<size_t>(replicas));
    Row row;
    row.fleet = mix;
    row.policy = "static-split";
    row.replicas = replicas;
    serving::ServeResult agg;
    for (int64_t i = 0; i < replicas; ++i) {
        serving::ClusterConfig cc;
        cc.replicas = {fleet[i]};
        const auto r = serving::Cluster(engine, cc).run(shards[i]);
        agg.metrics.merge(r.fleet.metrics);
        agg.makespan_seconds =
            std::max(agg.makespan_seconds, r.fleet.makespan_seconds);
        row.rejected += static_cast<int64_t>(r.fleet.rejected.size());
        row.per_replica_completed.push_back(r.completed());
    }
    row.s = agg.summary();
    return row;
}

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-10s %-20s %3s %10s %9s %9s %9s %9s %5s %4s\n",
                "fleet", "policy", "N", "tok/s", "ttft_avg",
                "ttft_p95", "ttft_p99", "e2e_p99", "done", "rej");
    for (const Row &r : rows) {
        std::printf(
            "%-10s %-20s %3ld %10.1f %9.1f %9.1f %9.1f %9.1f %5ld "
            "%4ld\n",
            r.fleet.c_str(), r.policy.c_str(), r.replicas,
            r.s.throughput_tokens_per_s, r.s.ttft_mean, r.s.ttft_p95,
            r.s.ttft_p99, r.s.e2e_p99, r.s.completed, r.rejected);
    }
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Row &r : rows) {
        obs::JsonRow row;
        row.str("fleet", r.fleet)
            .str("policy", r.policy)
            .num("replicas", r.replicas)
            .str("trace", "mixed-length")
            .num("throughput_tokens_per_s",
                 r.s.throughput_tokens_per_s, "%.2f")
            .num("ttft_mean_s", r.s.ttft_mean, "%.3f")
            .num("ttft_p50_s", r.s.ttft_p50, "%.3f")
            .num("ttft_p95_s", r.s.ttft_p95, "%.3f")
            .num("ttft_p99_s", r.s.ttft_p99, "%.3f")
            .num("e2e_p99_s", r.s.e2e_p99, "%.3f")
            .num("tpot_mean_s", r.s.tpot_mean, "%.5f")
            .num("queue_delay_mean_s", r.s.queue_delay_mean, "%.3f")
            .num("completed", r.s.completed)
            .num("rejected", r.rejected)
            .num("makespan_s", r.s.makespan_seconds, "%.2f")
            .raw("per_replica_completed",
                 obs::jsonNumberArray(r.per_replica_completed));
        out.push_back(row.render());
    }
    bench::writeBenchJson(path, "cluster_scaling", "cloudA800+edge4060",
                          out);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_cluster.json";
    const int64_t num_requests =
        argc > 2 ? std::atoll(argv[2]) : 96;
    core::TimingEngine engine;

    workload::TraceConfig tc;
    tc.num_requests = num_requests;
    tc.arrival_rate_per_s = 1.0; // loads a 4-replica fleet
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);

    std::vector<Row> rows;

    // 1. Homogeneous A800 scaling.
    for (int64_t n : {1, 2, 4}) {
        for (auto policy : {serving::RouterPolicy::RoundRobin,
                            serving::RouterPolicy::JoinShortestQueue}) {
            rows.push_back(runOne(engine, "A800", n, policy, trace));
        }
    }

    // 2. Heterogeneous fleet, all router policies.
    for (auto policy : {serving::RouterPolicy::RoundRobin,
                        serving::RouterPolicy::JoinShortestQueue,
                        serving::RouterPolicy::LeastKvLoad,
                        serving::RouterPolicy::TwoTier}) {
        rows.push_back(runOne(engine, "A800+4060", 4, policy, trace));
    }

    // 3. Static-splitting baseline on both fleets.
    rows.push_back(runSplitBaseline(engine, "A800", 4, trace));
    rows.push_back(runSplitBaseline(engine, "A800+4060", 4, trace));

    bench::section("Cluster scaling: replicas x router policy x fleet "
                   "mix (mixed-length Poisson)");
    printRows(rows);
    std::printf(
        "\nNotes: the heterogeneous fleet pairs two A800 8B replicas "
        "with two RTX 4060 1B edge\nreplicas. Round-robin keeps "
        "handing long prompts to the slow edge prefill; load-aware\n"
        "policies (least-kv-load, two-tier) steer them to the big-HBM "
        "replicas, which is where\nthe p99 TTFT gap comes from. "
        "static-split partitions the trace offline with no router.\n");
    writeJson(rows, out_path);
    return 0;
}
