/**
 * @file
 * §7.4 overhead accounting: retrieval head weights (~60 MB for 8B
 * bases), K-cache footprint (the "+1 layer" of Eq. 6), and memory
 * model cross-checks for every geometry preset.
 */
#include "bench/bench_util.h"
#include "sim/memory_model.h"

using namespace specontext;

int
main()
{
    bench::section("§7.4: retrieval head overhead per geometry preset");
    std::printf("%-28s %10s %12s %12s %10s\n", "model", "params(B)",
                "DLM(B)", "head(B)", "head-MB");
    for (const auto &m :
         {model::llama31_8bGeometry(),
          model::deepseekDistillLlama8bGeometry(),
          model::qwen3_8bGeometry(),
          model::reasoningLlama32_1bGeometry()}) {
        const auto dlm = model::dlmGeometryFor(m);
        const int64_t head = model::prunedRetrievalHeadParams(m);
        std::printf("%-28s %10.2f %12.3f %12.4f %10.1f\n",
                    m.name.c_str(), m.parameterCount() / 1e9,
                    dlm.parameterCount() / 1e9, head / 1e9,
                    2.0 * head / 1e6);
    }
    std::printf("(paper: ~60 MB head for Llama3-8B/Qwen3-8B; >90%% "
                "reduction vs the ~0.5B DLM)\n");

    bench::section("head K-cache bytes per 1K tokens (the +1 layer of "
                   "Eq. 6)");
    for (const auto &m : {model::llama31_8bGeometry(),
                          model::reasoningLlama32_1bGeometry()}) {
        const int64_t per_1k =
            2 * 1024 * m.kv_heads * m.head_dim; // K only, FP16
        std::printf("%-28s %10.2f MB\n", m.name.c_str(), per_1k / 1e6);
    }

    bench::section("Eq. 6 memory footprints at S = 32K");
    for (int64_t requests : {1, 4, 16, 32}) {
        sim::MemoryModelInputs in;
        in.llm = model::llama31_8bGeometry();
        in.dlm = model::dlmGeometryFor(in.llm);
        in.requests = requests;
        in.budget = 2048;
        in.gpu_mem_bytes = 80LL << 30;
        sim::MemoryModel mm(in);
        std::printf("R=%2ld: M_all(32K) = %6.1f GB, fits on A800: %s, "
                    "max resident layers: %ld\n",
                    requests, mm.mAllBytes(32768) / 1e9,
                    mm.allFitsOnGpu(32768) ? "yes" : "no",
                    mm.maxGpuLayers(32768));
    }
    return 0;
}
