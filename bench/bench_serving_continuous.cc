/**
 * @file
 * Continuous batching vs wave scheduling on open-loop Poisson traffic
 * (beyond the paper's closed Table 3 grid): FlashInfer and SpeContext
 * serving the paper-mix and mixed-length traces on the cloud A800,
 * with per-request latency metrics (TTFT / TPOT / E2E percentiles)
 * and aggregate token throughput. Writes machine-readable results to
 * BENCH_serving.json (override with argv[1]) so the trajectory is
 * trackable across PRs.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/server.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

struct Row
{
    std::string system;
    std::string trace;
    std::string discipline;
    serving::ServingSummary s;
    int64_t rejected = 0;
    int64_t peak = 0;
};

Row
runOne(const core::TimingEngine &engine, core::SystemKind sys,
       const std::string &trace_name,
       const std::vector<serving::Request> &trace, bool continuous)
{
    serving::ServerConfig cfg;
    cfg.timing.llm = model::deepseekDistillLlama8bGeometry();
    cfg.timing.hw = sim::HardwareSpec::cloudA800();
    cfg.timing.system = sys;
    cfg.timing.budget = 2048;
    cfg.max_batch = 64;

    serving::ServeResult r =
        continuous ? serving::Server(engine, cfg).run(trace)
                   : serving::serveWaves(engine, cfg, trace);
    Row row;
    row.system = core::systemKindName(sys);
    row.trace = trace_name;
    row.discipline = continuous ? "continuous" : "wave";
    row.s = r.summary();
    row.rejected = static_cast<int64_t>(r.rejected.size());
    row.peak = r.peak_in_flight;
    return row;
}

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-22s %-12s %-11s %10s %9s %9s %9s %9s %5s %4s\n",
                "system", "trace", "discipline", "tok/s", "ttft_avg",
                "ttft_p95", "e2e_avg", "e2e_p95", "done", "peak");
    for (const Row &r : rows) {
        std::printf(
            "%-22s %-12s %-11s %10.1f %9.1f %9.1f %9.1f %9.1f %5ld %4ld\n",
            r.system.c_str(), r.trace.c_str(), r.discipline.c_str(),
            r.s.throughput_tokens_per_s, r.s.ttft_mean, r.s.ttft_p95,
            r.s.e2e_mean, r.s.e2e_p95, r.s.completed, r.peak);
    }
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::printf("cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"serving_continuous\",\n"
                    "  \"hardware\": \"cloudA800\",\n  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"system\": \"%s\", \"trace\": \"%s\", "
            "\"discipline\": \"%s\", \"throughput_tokens_per_s\": %.2f, "
            "\"ttft_mean_s\": %.3f, \"ttft_p95_s\": %.3f, "
            "\"tpot_mean_s\": %.5f, \"e2e_mean_s\": %.3f, "
            "\"e2e_p95_s\": %.3f, \"queue_delay_mean_s\": %.3f, "
            "\"completed\": %ld, \"rejected\": %ld, "
            "\"peak_in_flight\": %ld, \"makespan_s\": %.2f}%s\n",
            r.system.c_str(), r.trace.c_str(), r.discipline.c_str(),
            r.s.throughput_tokens_per_s, r.s.ttft_mean, r.s.ttft_p95,
            r.s.tpot_mean, r.s.e2e_mean, r.s.e2e_p95,
            r.s.queue_delay_mean, r.s.completed, r.rejected, r.peak,
            r.s.makespan_seconds, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_serving.json";
    core::TimingEngine engine;

    workload::TraceConfig tc;
    tc.num_requests = 64;
    tc.arrival_rate_per_s = 0.5; // heavy open-loop load
    tc.seed = 7;
    const auto paper_trace = workload::paperMixTrace(tc);
    const auto mixed_trace = workload::mixedLengthTrace(tc);

    std::vector<Row> rows;
    for (auto sys : {core::SystemKind::FlashInfer,
                     core::SystemKind::SpeContext}) {
        for (bool continuous : {false, true}) {
            rows.push_back(runOne(engine, sys, "paper-mix",
                                  paper_trace, continuous));
            rows.push_back(runOne(engine, sys, "mixed-length",
                                  mixed_trace, continuous));
        }
    }

    bench::section("Continuous batching vs wave scheduling "
                   "(open-loop Poisson, 64 requests)");
    printRows(rows);
    std::printf(
        "\nNotes: wave scheduling pads every member to the wave's "
        "longest prompt/generation and\nholds a barrier until the wave "
        "drains; continuous batching admits and retires at "
        "iteration\nboundaries under memory-model admission control. "
        "Mixed-length traffic is where barriers\nhurt most.\n");
    writeJson(rows, out_path);
    return 0;
}
