/**
 * @file
 * Continuous batching vs wave scheduling on open-loop Poisson traffic
 * (beyond the paper's closed Table 3 grid): every registry system the
 * continuous batcher can drive (FlashInfer, SpeContext, H2O,
 * StreamingLLM) serving the paper-mix and mixed-length traces on A800,
 * with per-request latency metrics (TTFT / TPOT / E2E percentiles)
 * and aggregate token throughput. Writes machine-readable results to
 * BENCH_serving.json (override with argv[1]) so the trajectory is
 * trackable across PRs; argv[2] shrinks the trace for CI smoke runs.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/server.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

struct Row
{
    std::string system;
    std::string trace;
    std::string discipline;
    serving::ServingSummary s;
    int64_t rejected = 0;
    int64_t peak = 0;
};

Row
runOne(const core::TimingEngine &engine, const std::string &sys,
       const std::string &trace_name,
       const std::vector<serving::Request> &trace, bool continuous)
{
    serving::ServerConfig cfg;
    cfg.timing.llm = model::deepseekDistillLlama8bGeometry();
    cfg.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    cfg.timing.system = core::SystemRegistry::create(sys, opts);
    cfg.max_batch = 64;

    serving::ServeResult r =
        continuous ? serving::Server(engine, cfg).run(trace)
                   : serving::serveWaves(engine, cfg, trace);
    Row row;
    row.system = sys;
    row.trace = trace_name;
    row.discipline = continuous ? "continuous" : "wave";
    row.s = r.summary();
    row.rejected = static_cast<int64_t>(r.rejected.size());
    row.peak = r.peak_in_flight;
    return row;
}

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-22s %-12s %-11s %10s %9s %9s %9s %9s %5s %4s\n",
                "system", "trace", "discipline", "tok/s", "ttft_avg",
                "ttft_p95", "e2e_avg", "e2e_p95", "done", "peak");
    for (const Row &r : rows) {
        std::printf(
            "%-22s %-12s %-11s %10.1f %9.1f %9.1f %9.1f %9.1f %5ld %4ld\n",
            r.system.c_str(), r.trace.c_str(), r.discipline.c_str(),
            r.s.throughput_tokens_per_s, r.s.ttft_mean, r.s.ttft_p95,
            r.s.e2e_mean, r.s.e2e_p95, r.s.completed, r.peak);
    }
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Row &r : rows) {
        obs::JsonRow row;
        row.str("system", r.system)
            .str("trace", r.trace)
            .str("discipline", r.discipline)
            .num("throughput_tokens_per_s",
                 r.s.throughput_tokens_per_s, "%.2f")
            .num("ttft_mean_s", r.s.ttft_mean, "%.3f")
            .num("ttft_p95_s", r.s.ttft_p95, "%.3f")
            .num("tpot_mean_s", r.s.tpot_mean, "%.5f")
            .num("e2e_mean_s", r.s.e2e_mean, "%.3f")
            .num("e2e_p95_s", r.s.e2e_p95, "%.3f")
            .num("queue_delay_mean_s", r.s.queue_delay_mean, "%.3f")
            .num("completed", r.s.completed)
            .num("rejected", r.rejected)
            .num("peak_in_flight", r.peak)
            .num("makespan_s", r.s.makespan_seconds, "%.2f");
        out.push_back(row.render());
    }
    bench::writeBenchJson(path, "serving_continuous", "cloudA800", out);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_serving.json";
    core::TimingEngine engine;

    workload::TraceConfig tc;
    tc.num_requests = argc > 2 ? std::atoll(argv[2]) : 64;
    tc.arrival_rate_per_s = 0.5; // heavy open-loop load
    tc.seed = 7;
    const auto paper_trace = workload::paperMixTrace(tc);
    const auto mixed_trace = workload::mixedLengthTrace(tc);

    // Every registered system the continuous batcher can drive, with
    // the eager/FlashAttention variants elided (same dataflow as
    // FlashInfer, slower kernels — noise in this comparison).
    std::vector<Row> rows;
    core::SystemOptions probe_opts;
    for (const std::string &sys : core::SystemRegistry::names()) {
        if (!core::SystemRegistry::create(sys, probe_opts)
                 ->supportsContinuousBatching())
            continue;
        if (sys == "FullAttn(Eager)" || sys == "FullAttn(FlashAttn)")
            continue;
        for (bool continuous : {false, true}) {
            rows.push_back(runOne(engine, sys, "paper-mix",
                                  paper_trace, continuous));
            rows.push_back(runOne(engine, sys, "mixed-length",
                                  mixed_trace, continuous));
        }
    }

    bench::section("Continuous batching vs wave scheduling "
                   "(open-loop Poisson, " +
                   std::to_string(tc.num_requests) + " requests)");
    printRows(rows);
    std::printf(
        "\nNotes: wave scheduling pads every member to the wave's "
        "longest prompt/generation and\nholds a barrier until the wave "
        "drains; continuous batching admits and retires at "
        "iteration\nboundaries under memory-model admission control. "
        "Mixed-length traffic is where barriers\nhurt most.\n");
    writeJson(rows, out_path);
    return 0;
}
