/**
 * @file
 * Figure 10: single-request end-to-end throughput on the four
 * [input, output] workloads — (a) cloud A800, (b) edge RTX 4060
 * capped at 4 GB (the paper's §7.3.2 setting with offloading enabled
 * for the full-attention baselines).
 */
#include "bench/bench_util.h"
#include "core/timing_engine.h"
#include "serving/scheduler.h"

using namespace specontext;

namespace {

void
run(const char *title, const model::ModelConfig &m,
    const sim::HardwareSpec &hw, bool allow_offload,
    const std::vector<core::SystemKind> &systems)
{
    bench::section(title);
    core::TimingEngine te;
    std::printf("%-10s", "workload");
    for (auto s : systems)
        std::printf(" %20s", core::systemKindName(s));
    std::printf("\n");
    for (const auto &w : serving::paperWorkloads()) {
        std::printf("%-10s", w.label().c_str());
        for (auto sys : systems) {
            core::TimingConfig tc;
            tc.llm = m;
            tc.hw = hw;
            tc.system = sys;
            tc.batch = 1;
            tc.prompt_len = w.prompt_len;
            tc.gen_len = w.gen_len;
            tc.budget = 2048;
            tc.allow_full_attention_offload = allow_offload;
            const auto r = te.simulate(tc);
            if (r.oom)
                std::printf(" %20s", "OOM");
            else
                std::printf(" %20.2f", r.throughput);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    run("Fig 10(a): cloud single request (A800, DeepSeek-8B geometry), "
        "tokens/s",
        model::deepseekDistillLlama8bGeometry(),
        sim::HardwareSpec::cloudA800(), false,
        {core::SystemKind::HFEager, core::SystemKind::FlashAttention,
         core::SystemKind::FlashInfer, core::SystemKind::Quest,
         core::SystemKind::ShadowKV, core::SystemKind::ClusterKV,
         core::SystemKind::SpeContext});

    run("Fig 10(b): edge single request (RTX4060 4GB cap, "
        "Reasoning-Llama-1B geometry), tokens/s",
        model::reasoningLlama32_1bGeometry(),
        sim::HardwareSpec::edge4060Capped4G(), true,
        {core::SystemKind::HFEager, core::SystemKind::FlashAttention,
         core::SystemKind::ShadowKV, core::SystemKind::SpeContext});

    std::printf("\n(paper shape: (a) ours best on the reasoning rows "
                "[2k,16k]/[2k,32k], ~FlashInfer on the input rows; "
                "(b) ours up to ~10x over eager, ~1.2x over ShadowKV)\n");
    return 0;
}
