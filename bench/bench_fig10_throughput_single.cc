/**
 * @file
 * Figure 10: single-request end-to-end throughput on the four
 * [input, output] workloads — (a) cloud A800, (b) edge RTX 4060
 * capped at 4 GB (the paper's §7.3.2 setting with offloading enabled
 * for the full-attention baselines).
 */
#include "bench/bench_util.h"
#include "core/timing_engine.h"
#include "serving/batch_sweep.h"

using namespace specontext;

namespace {

void
run(const char *title, const model::ModelConfig &m,
    const sim::HardwareSpec &hw, bool allow_offload,
    const std::vector<std::string> &systems)
{
    bench::section(title);
    core::TimingEngine te;
    core::SystemOptions opts;
    opts.budget = 2048;
    opts.allow_full_attention_offload = allow_offload;
    std::printf("%-10s", "workload");
    for (const auto &s : systems)
        std::printf(" %20s", s.c_str());
    std::printf("\n");
    for (const auto &w : serving::paperWorkloads()) {
        std::printf("%-10s", w.label().c_str());
        for (const auto &sys : systems) {
            core::TimingConfig tc;
            tc.llm = m;
            tc.hw = hw;
            tc.system = core::SystemRegistry::create(sys, opts);
            tc.batch = 1;
            tc.prompt_len = w.prompt_len;
            tc.gen_len = w.gen_len;
            const auto r = te.simulate(tc);
            if (r.oom)
                std::printf(" %20s", "OOM");
            else
                std::printf(" %20.2f", r.throughput);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    run("Fig 10(a): cloud single request (A800, DeepSeek-8B geometry), "
        "tokens/s",
        model::geometryPreset("DeepSeek-Distill-Llama-8B"),
        sim::HardwareSpec::cloudA800(), false,
        {"FullAttn(Eager)", "FullAttn(FlashAttn)", "FullAttn(FlashInfer)",
         "Quest", "ShadowKV", "ClusterKV", "SpeContext"});

    run("Fig 10(b): edge single request (RTX4060 4GB cap, "
        "Reasoning-Llama-1B geometry), tokens/s",
        model::geometryPreset("Reasoning-Llama-3.2-1B"),
        sim::HardwareSpec::edge4060Capped4G(), true,
        {"FullAttn(Eager)", "FullAttn(FlashAttn)", "ShadowKV",
         "SpeContext"});

    std::printf("\n(paper shape: (a) ours best on the reasoning rows "
                "[2k,16k]/[2k,32k], ~FlashInfer on the input rows; "
                "(b) ours up to ~10x over eager, ~1.2x over ShadowKV)\n");
    return 0;
}
