/**
 * @file
 * Wall-clock micro-benchmarks (google-benchmark) of the primitives the
 * live engine actually executes: GEMV/GEMM projections, softmax, RoPE,
 * Top-K, elastic set difference, one decode step and one retrieval
 * head step. These measure this repository's real CPU kernels, not
 * the simulated GPU.
 */
#include <benchmark/benchmark.h>

#include "core/elastic_loader.h"
#include "kvcache/kv_cache.h"
#include "model/distiller.h"
#include "model/transformer.h"
#include "retrieval/retrieval_head.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

using namespace specontext;

namespace {

void
BM_Vecmat(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor x = Tensor::randn({n}, rng);
    Tensor w = Tensor::randn({n, n}, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops::vecmat(x, w));
    state.SetComplexityN(n);
}
BENCHMARK(BM_Vecmat)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void
BM_Softmax(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(2);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.gaussian();
    for (auto _ : state) {
        auto copy = v;
        ops::softmaxInPlace(copy.data(), n);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(16384)->Arg(131072);

void
BM_Rope(benchmark::State &state)
{
    Rng rng(3);
    Tensor qk = Tensor::randn({8, 128}, rng);
    int64_t pos = 0;
    for (auto _ : state)
        ops::applyRope(qk, ++pos);
}
BENCHMARK(BM_Rope);

void
BM_TopK(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(4);
    std::vector<float> scores(n);
    for (auto &x : scores)
        x = static_cast<float>(rng.uniform());
    for (auto _ : state)
        benchmark::DoNotOptimize(topkIndices(scores, n / 16));
}
BENCHMARK(BM_TopK)->Arg(4096)->Arg(32768)->Arg(131072);

void
BM_ElasticDiff(benchmark::State &state)
{
    const int64_t budget = state.range(0);
    Rng rng(5);
    std::vector<float> s1(budget * 4), s2(budget * 4);
    for (auto &x : s1)
        x = static_cast<float>(rng.uniform());
    s2 = s1;
    for (int i = 0; i < budget / 4; ++i)
        s2[rng.uniformInt(s2.size())] += 1.0f;
    const auto a = topkIndices(s1, budget);
    const auto b = topkIndices(s2, budget);
    for (auto _ : state)
        benchmark::DoNotOptimize(sortedDifference(a, b));
}
BENCHMARK(BM_ElasticDiff)->Arg(512)->Arg(2048)->Arg(8192);

void
BM_DecodeStepFull(benchmark::State &state)
{
    const auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    const auto llm = model::Transformer::randomInit(cfg, 6);
    kv::KVCacheSet cache(cfg);
    Rng rng(7);
    std::vector<int32_t> prompt;
    for (int i = 0; i < state.range(0); ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    llm.prefill(prompt, cache);
    const int64_t base = cache.sequenceLength();
    for (auto _ : state) {
        benchmark::DoNotOptimize(llm.decodeStep(5, cache));
        // Roll back so every iteration measures the same KV length.
        cache.truncate(base);
    }
}
BENCHMARK(BM_DecodeStepFull)->Arg(128)->Arg(512);

void
BM_RetrievalHeadStep(benchmark::State &state)
{
    const auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    const auto llm = model::Transformer::randomInit(cfg, 8);
    const auto dlm = model::distill(llm);
    retrieval::RetrievalHead head(dlm, {64});
    Rng rng(9);
    for (int i = 0; i < state.range(0); ++i)
        head.observe(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    for (auto _ : state)
        benchmark::DoNotOptimize(head.step(5));
}
BENCHMARK(BM_RetrievalHeadStep)->Arg(256)->Arg(1024)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
