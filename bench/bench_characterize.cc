/**
 * @file
 * Trace-suite characterization: every workload generator run through
 * one fixed fleet (2x A800, Optimistic admission, prefix cache,
 * PrefixAffinity routing), fingerprinted by what actually bound the
 * fleet — in the spirit of the SPEC CPU2026 suite-characterization
 * methodology, the suite itself is the system under test.
 *
 * Per trace the bench reports:
 *  - the regime-occupancy vector (share of run time per
 *    obs::Regime, from classifyRegimes over the sampler feed);
 *  - the phase-blame signature (mean per-phase share of E2E latency
 *    across complete request timelines, from analyzeTrace);
 *  - the dominant phase at p99 E2E / TTFT (the blame table's answer
 *    to "where did the tail go").
 *
 * Across traces it scores the suite: pairwise redundancy as cosine
 * distance between signatures (occupancy ++ phase shares — near-zero
 * distance means two traces stress the fleet identically and one is
 * redundant), per-regime coverage (which trace dominates each regime;
 * a regime nobody reaches kCoverageShare on is uncovered), and
 * whether the two newest traces (rag-spike, agentic-loop) earn their
 * place by dominating regimes no pre-existing trace covers.
 *
 * Writes BENCH_characterize.json (override with argv[1]; a regime CSV
 * and Chrome trace for the last workload land as siblings); argv[2]
 * caps requests per trace for CI smoke runs.
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/regime.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

/** A regime is covered when some trace spends at least this share of
 *  its run in it (dominance alone is cheap: every regime has *some*
 *  argmax). */
constexpr double kCoverageShare = 0.15;

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.allow_full_attention_offload = false;
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.prefix_cache.page_size = 16;
    rc.scheduler_mode = serving::SchedulerMode::Optimistic;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

struct WorkloadSpec
{
    std::string name;
    /** True for the two traces this PR adds (the coverage check asks
     *  whether they dominate regimes the pre-existing six miss). */
    bool is_new = false;
    std::function<std::vector<serving::Request>(int64_t)> make;
};

/** The full suite. Each generator takes a request budget so CI smoke
 *  runs shrink uniformly; session-based traces derive their session
 *  count from it. */
std::vector<WorkloadSpec>
suite()
{
    std::vector<WorkloadSpec> specs;
    specs.push_back({"poisson-paper-mix", false, [](int64_t n) {
        workload::TraceConfig tc;
        tc.num_requests = n;
        tc.arrival_rate_per_s = 0.25;
        tc.seed = 21;
        return workload::paperMixTrace(tc);
    }});
    specs.push_back({"mixed-length", false, [](int64_t n) {
        workload::TraceConfig tc;
        tc.num_requests = n;
        tc.arrival_rate_per_s = 0.08;
        tc.seed = 22;
        return workload::mixedLengthTrace(tc);
    }});
    specs.push_back({"shared-prefix", false, [](int64_t n) {
        workload::SharedPrefixTraceConfig sp;
        sp.base.num_requests = n;
        sp.base.arrival_rate_per_s = 0.5;
        sp.base.seed = 23;
        sp.num_families = 16;
        return workload::sharedPrefixTrace(sp);
    }});
    specs.push_back({"multi-turn", false, [](int64_t n) {
        workload::MultiTurnTraceConfig mt;
        mt.base.num_requests = std::max<int64_t>(2, n / mt.turns);
        mt.base.arrival_rate_per_s = 0.05;
        mt.base.seed = 24;
        return workload::multiTurnTrace(mt);
    }});
    specs.push_back({"diurnal", false, [](int64_t n) {
        workload::DiurnalTraceConfig dc;
        dc.base.num_requests = n;
        dc.base.arrival_rate_per_s = 0.5;
        dc.base.seed = 25;
        dc.gen_lo = 256;
        dc.gen_hi = 2048;
        return workload::diurnalTrace(dc);
    }});
    specs.push_back({"flash-crowd", false, [](int64_t n) {
        workload::FlashCrowdTraceConfig fc;
        fc.base.num_requests = n;
        fc.base.arrival_rate_per_s = 0.25;
        fc.base.seed = 26;
        fc.burst_multiplier = 20.0;
        fc.burst_duration_seconds = 120.0;
        fc.gen_lo = 256;
        fc.gen_hi = 2048;
        return workload::flashCrowdTrace(fc);
    }});
    specs.push_back({"rag-spike", true, [](int64_t n) {
        workload::RagSpikeTraceConfig rs;
        rs.base.num_requests = n;
        rs.base.arrival_rate_per_s = 0.2;
        rs.base.seed = 27;
        return workload::ragSpikeTrace(rs);
    }});
    specs.push_back({"agentic-loop", true, [](int64_t n) {
        workload::AgenticLoopTraceConfig al;
        al.steps = 12;
        al.base.num_requests = std::max<int64_t>(2, n / al.steps);
        al.base.arrival_rate_per_s = 0.25;
        al.base.seed = 28;
        // Research-agent shape: fat tool outputs (retrieved pages,
        // command logs) and long-form reasoning before each call, so
        // live contexts snowball and pack the KV budget.
        al.tool_output_lo = 2048;
        al.tool_output_hi = 16384;
        al.gen_lo = 256;
        al.gen_hi = 2048;
        return workload::agenticLoopTrace(al);
    }});
    return specs;
}

/** One trace's fingerprint after its run. */
struct Fingerprint
{
    std::string name;
    bool is_new = false;
    int64_t requests = 0;
    int64_t completed_timelines = 0;
    int64_t incomplete_timelines = 0;
    int64_t preemptions = 0;
    double makespan_seconds = 0.0;
    std::vector<double> occupancy;   // kRegimeCount
    std::vector<double> phase_share; // kPhaseCount
    obs::Regime dominant_regime = obs::Regime::Idle;
    obs::Phase dominant_p99_e2e = obs::Phase::Decode;
    obs::Phase dominant_p99_ttft = obs::Phase::Decode;

    /** occupancy ++ phase_share: the redundancy-scoring vector. */
    std::vector<double> signature() const
    {
        std::vector<double> sig = occupancy;
        sig.insert(sig.end(), phase_share.begin(), phase_share.end());
        return sig;
    }
};

double
cosineDistance(const std::vector<double> &a,
               const std::vector<double> &b)
{
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if (na == 0.0 || nb == 0.0)
        return 1.0;
    return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

std::string
sibling(const std::string &path, const std::string &suffix)
{
    const std::string tail = ".json";
    if (path.size() >= tail.size() &&
        path.compare(path.size() - tail.size(), tail.size(), tail) == 0)
        return path.substr(0, path.size() - tail.size()) + suffix;
    return path + suffix;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_characterize.json";
    const int64_t budget = argc > 2 ? std::atoll(argv[2]) : 256;

    core::TimingEngine engine;
    serving::ClusterConfig cc;
    cc.replicas = {cloudReplica(), cloudReplica()};
    cc.router.policy = serving::RouterPolicy::PrefixAffinity;

    const std::vector<WorkloadSpec> specs = suite();
    std::vector<Fingerprint> prints;
    bench::section("Trace-suite characterization (2x A800 "
                   "Optimistic, PrefixAffinity, " +
                   std::to_string(budget) + "-request budget)");
    std::printf("%-18s %8s %9s %6s %15s %18s\n", "workload",
                "requests", "makespan", "preempt", "dominant_regime",
                "dominant_p99_e2e");

    for (const WorkloadSpec &spec : specs) {
        const auto trace = spec.make(budget);

        // Fresh observability per trace: the ring is sized to hold
        // the whole run (a wrapped ring would flag timelines
        // incomplete instead of fingerprinting them).
        obs::Trace ring({1 << 21});
        obs::CounterRegistry counters;
        obs::TimeseriesSampler sampler(&counters, {5.0, 1 << 16});
        serving::ClusterConfig oc = cc;
        oc.obs = {&ring, &counters, &sampler};
        const serving::Cluster cluster(engine, oc);
        const serving::ClusterResult result = cluster.run(trace);

        const obs::TraceAnalysis analysis = obs::analyzeTrace(ring);
        // Stricter prefill dominance than the library default: at 5s
        // windows a mixed trace's admission bursts routinely put 4x
        // more prompt than generated tokens in one window; 8x only
        // trips when prefill genuinely starves decode.
        obs::RegimeConfig regime_cfg;
        regime_cfg.prefill_dominance = 16.0;
        const obs::RegimeTimeline regimes =
            obs::classifyRegimes(sampler, regime_cfg);
        const obs::BlameTable blame_e2e =
            obs::blameTable(analysis.complete, obs::BlameMetric::E2E);
        const obs::BlameTable blame_ttft =
            obs::blameTable(analysis.complete, obs::BlameMetric::TTFT);

        Fingerprint fp;
        fp.name = spec.name;
        fp.is_new = spec.is_new;
        fp.requests = static_cast<int64_t>(trace.size());
        fp.completed_timelines =
            static_cast<int64_t>(analysis.complete.size());
        fp.incomplete_timelines =
            static_cast<int64_t>(analysis.incomplete.size());
        fp.preemptions = result.fleet.preempt.preemptions;
        fp.makespan_seconds = result.fleet.makespan_seconds;
        fp.occupancy.assign(regimes.occupancy,
                            regimes.occupancy + obs::kRegimeCount);
        fp.phase_share = obs::phaseShareSignature(
            analysis.complete, obs::BlameMetric::E2E);
        fp.dominant_regime = regimes.dominantRegime();
        if (!blame_e2e.rows.empty())
            fp.dominant_p99_e2e = blame_e2e.rows[0].dominant_p99;
        if (!blame_ttft.rows.empty())
            fp.dominant_p99_ttft = blame_ttft.rows[0].dominant_p99;
        std::printf("%-18s %8lld %8.0fs %6lld %15s %18s\n",
                    fp.name.c_str(),
                    static_cast<long long>(fp.requests),
                    fp.makespan_seconds,
                    static_cast<long long>(fp.preemptions),
                    obs::regimeName(fp.dominant_regime),
                    obs::phaseName(fp.dominant_p99_e2e));

        // The last workload's regime CSV + Chrome overlay ride along
        // as exporter smoke (CI re-parses the Chrome trace).
        if (&spec == &specs.back()) {
            obs::writeRegimeCsv(regimes,
                                sibling(out_path, ".regimes.csv"));
            obs::writeChromeTrace(ring,
                                  sibling(out_path, ".trace.json"),
                                  {"replica0 (A800)",
                                   "replica1 (A800)"},
                                  &regimes);
        }
        prints.push_back(std::move(fp));
    }

    // Pairwise redundancy: cosine distance between signatures.
    const size_t n = prints.size();
    std::vector<std::vector<double>> dist(n,
                                          std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            dist[i][j] = cosineDistance(prints[i].signature(),
                                        prints[j].signature());

    // Coverage: per regime, who dominates, and does anyone reach the
    // coverage share. A new trace "earns its place" when it dominates
    // a regime no pre-existing trace covers.
    std::printf("\n%-16s %-18s %13s %8s\n", "regime",
                "dominant_trace", "max_occupancy", "covered");
    std::vector<std::string> uncovered;
    std::vector<std::string> earned;
    std::vector<std::string> coverage_rows;
    for (size_t r = 0; r < obs::kRegimeCount; ++r) {
        size_t best = 0;
        double old_best = 0.0; // best among pre-existing traces
        for (size_t i = 0; i < n; ++i) {
            if (prints[i].occupancy[r] > prints[best].occupancy[r])
                best = i;
            if (!prints[i].is_new)
                old_best = std::max(old_best, prints[i].occupancy[r]);
        }
        const double max_occ = prints[best].occupancy[r];
        const bool covered = max_occ >= kCoverageShare;
        const char *rname =
            obs::regimeName(static_cast<obs::Regime>(r));
        if (!covered)
            uncovered.push_back(rname);
        if (covered && prints[best].is_new &&
            old_best < kCoverageShare)
            earned.push_back(prints[best].name + " -> " + rname);
        std::printf("%-16s %-18s %13.3f %8s\n", rname,
                    max_occ > 0.0 ? prints[best].name.c_str() : "-",
                    max_occ, covered ? "yes" : "no");
        obs::JsonRow row;
        row.str("row", "regime_coverage")
            .str("regime", rname)
            .str("dominant_trace",
                 max_occ > 0.0 ? prints[best].name : "-")
            .num("max_occupancy", max_occ, "%.4f")
            .boolean("covered", covered)
            .boolean("dominated_by_new_trace",
                     max_occ > 0.0 && prints[best].is_new)
            .num("best_preexisting_occupancy", old_best, "%.4f");
        coverage_rows.push_back(row.render());
    }
    std::printf("\nNew traces earning their place (dominate a regime "
                "no pre-existing trace covers):\n");
    for (const std::string &e : earned)
        std::printf("  %s\n", e.c_str());
    if (earned.empty())
        std::printf("  (none)\n");

    std::vector<std::string> rows;
    for (size_t i = 0; i < n; ++i) {
        const Fingerprint &fp = prints[i];
        // Nearest other trace = the redundancy risk.
        size_t nearest = i == 0 ? 1 : 0;
        for (size_t j = 0; j < n; ++j)
            if (j != i && dist[i][j] < dist[i][nearest])
                nearest = j;
        obs::JsonRow row;
        row.str("row", "trace")
            .str("workload", fp.name)
            .boolean("new_trace", fp.is_new)
            .num("requests", fp.requests)
            .num("complete_timelines", fp.completed_timelines)
            .num("incomplete_timelines", fp.incomplete_timelines)
            .num("preemptions", fp.preemptions)
            .num("makespan_s", fp.makespan_seconds, "%.2f")
            .str("dominant_regime",
                 obs::regimeName(fp.dominant_regime))
            .str("dominant_phase_p99_e2e",
                 obs::phaseName(fp.dominant_p99_e2e))
            .str("dominant_phase_p99_ttft",
                 obs::phaseName(fp.dominant_p99_ttft))
            .raw("regime_occupancy",
                 obs::jsonNumberArray(fp.occupancy, "%.4f"))
            .raw("phase_blame_signature",
                 obs::jsonNumberArray(fp.phase_share, "%.4f"))
            .raw("redundancy_cosine_distance",
                 obs::jsonNumberArray(dist[i], "%.4f"))
            .str("nearest_trace", prints[nearest].name)
            .num("nearest_distance", dist[i][nearest], "%.4f");
        rows.push_back(row.render());
    }
    for (std::string &row : coverage_rows)
        rows.push_back(std::move(row));
    {
        obs::JsonRow row;
        row.str("row", "suite")
            .num("traces", static_cast<int64_t>(n))
            .num("coverage_share", kCoverageShare, "%.2f")
            .raw("uncovered_regimes",
                 obs::jsonStringArray(uncovered))
            .raw("earned_by_new_traces",
                 obs::jsonStringArray(earned));
        rows.push_back(row.render());
    }
    bench::writeBenchJson(out_path, "trace_suite_characterization",
                          "2x cloudA800", rows);

    std::printf(
        "\nNotes: occupancy = time-weighted regime shares from "
        "classifyRegimes over 5s sampler windows;\nphase signature = "
        "mean per-phase share of E2E latency across complete request "
        "timelines\n(analyzeTrace, identity-exact); distance = cosine "
        "distance between occupancy++phase vectors.\n");
    return 0;
}
