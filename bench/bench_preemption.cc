/**
 * @file
 * Preemptive-scheduling sweep: SchedulerMode x VictimPolicy x load
 * factor on a multi-turn conversation trace — the growing-context
 * traffic shape where pessimistic final-length booking hurts most.
 *
 * Reserve admission books every request's KV at its *final* length, so
 * a replica under long-generation traffic runs a small in-flight batch
 * and head-of-line blocks its queue while HBM it booked sits idle for
 * thousands of iterations. Optimistic admission packs the batch on
 * *current* footprints and preempts (policy-ordered victims, KV and
 * prefix pins released, recompute charged at restore) only when a
 * decode step would actually oversubscribe the memory model — the
 * vLLM discipline. The headline: at overload, Optimistic sustains
 * higher goodput (generated tokens per second of makespan) and far
 * lower TTFT than Reserve, at the price of nonzero recompute; at
 * underload the two are identical and the preemption counters stay 0.
 *
 * Restores ride the prefix cache: each replica keeps a kv::PrefixTree,
 * a preempted request's prompt usually survives eviction, and
 * re-loaded cache hits are charged at SystemOptions::prefix_reload_gbps
 * (exercising the non-free-hit knob) — only the generated suffix is
 * recomputed through prefill.
 *
 * Writes BENCH_preempt.json (override with argv[1]); argv[2] shrinks
 * the session count for CI smoke runs.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica(serving::SchedulerMode mode, serving::VictimPolicy victim)
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    // Full attention without offload: the KV cache must live in HBM,
    // so admission — not arithmetic — is what binds under load, which
    // is exactly the regime preemption is for.
    opts.allow_full_attention_offload = false;
    // Cache hits are not free here: matched blocks re-load at
    // NVLink-class bandwidth (the BENCH_prefix.json sweeps keep the
    // knob at its 0 default, so their numbers are untouched).
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.prefix_cache.page_size = 16;
    rc.scheduler_mode = mode;
    rc.victim_policy = victim;
    return rc;
}

struct SchedRow
{
    std::string mode;
    std::string victim;
    double load = 0.0;
    serving::ServingSummary s;
    serving::PreemptionStats preempt;
    serving::PrefixCacheStats prefix;
    int64_t rejected = 0;
    int64_t peak_in_flight = 0;
};

SchedRow
runOne(const core::TimingEngine &engine, serving::SchedulerMode mode,
       serving::VictimPolicy victim, double load,
       const std::vector<serving::Request> &trace)
{
    serving::ClusterConfig cc;
    cc.replicas = {cloudReplica(mode, victim),
                   cloudReplica(mode, victim)};
    cc.router.policy = serving::RouterPolicy::LeastKvLoad;
    const serving::ClusterResult r =
        serving::Cluster(engine, cc).run(trace);
    SchedRow row;
    row.mode = serving::schedulerModeName(mode);
    row.victim = serving::victimPolicyName(victim);
    row.load = load;
    row.s = r.summary();
    row.preempt = r.fleet.preempt;
    row.prefix = r.fleet.prefix;
    row.rejected = static_cast<int64_t>(r.fleet.rejected.size());
    row.peak_in_flight = r.fleet.peak_in_flight;
    return row;
}

void
printRows(const std::vector<SchedRow> &rows)
{
    std::printf("%-10s %-18s %5s %8s %9s %9s %8s %8s %10s %6s\n",
                "mode", "victim", "load", "goodput", "ttft_avg",
                "ttft_p99", "e2e_p99", "preempt", "recompute", "peak");
    for (const SchedRow &r : rows) {
        std::printf(
            "%-10s %-18s %5.2f %8.1f %9.2f %9.2f %8.1f %8ld %10ld "
            "%6ld\n",
            r.mode.c_str(), r.victim.c_str(), r.load,
            r.s.throughput_tokens_per_s, r.s.ttft_mean, r.s.ttft_p99,
            r.s.e2e_p99, r.preempt.preemptions,
            r.preempt.recompute_tokens, r.peak_in_flight);
    }
}

void
writeJson(const std::vector<SchedRow> &rows, const std::string &path)
{
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const SchedRow &r : rows) {
        obs::JsonRow row;
        row.str("mode", r.mode)
            .str("victim_policy", r.victim)
            .num("load_factor", r.load, "%.2f")
            .num("replicas", static_cast<int64_t>(2))
            .str("trace", "multi-turn")
            .num("goodput_tokens_per_s",
                 r.s.throughput_tokens_per_s, "%.2f")
            .num("completed", r.s.completed)
            .num("rejected", r.rejected)
            .num("preemptions", r.preempt.preemptions)
            .num("restores", r.preempt.restores)
            .num("recompute_tokens", r.preempt.recompute_tokens)
            .num("restore_prefill_tokens",
                 r.preempt.restore_prefill_tokens)
            .num("preempted_completed", r.s.preempted_completed)
            .num("ttft_mean_s", r.s.ttft_mean, "%.3f")
            .num("ttft_p99_s", r.s.ttft_p99, "%.3f")
            .num("e2e_p99_s", r.s.e2e_p99, "%.2f")
            .num("queue_delay_mean_s", r.s.queue_delay_mean, "%.3f")
            .num("peak_in_flight", r.peak_in_flight)
            .num("cache_hit_rate", r.prefix.hitRate(), "%.4f")
            .num("makespan_s", r.s.makespan_seconds, "%.2f")
            .raw("ttft_mean_by_preemptions_s",
                 obs::jsonNumberArray(r.s.ttft_mean_by_preemptions,
                                      "%.3f"));
        out.push_back(row.render());
    }
    bench::writeBenchJson(path, "preemption", "2x cloudA800", out);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_preempt.json";
    const int64_t num_sessions = argc > 2 ? std::atoll(argv[2]) : 12;
    core::TimingEngine engine;

    struct Sched
    {
        serving::SchedulerMode mode;
        serving::VictimPolicy victim;
    };
    const std::vector<Sched> scheds = {
        {serving::SchedulerMode::Reserve,
         serving::VictimPolicy::LastAdmitted},
        {serving::SchedulerMode::Optimistic,
         serving::VictimPolicy::LastAdmitted},
        {serving::SchedulerMode::Optimistic,
         serving::VictimPolicy::ShortestProgress},
        {serving::SchedulerMode::Optimistic,
         serving::VictimPolicy::FewestPrefixHitTokens},
    };

    std::vector<SchedRow> rows;
    // Load factor scales session arrivals around a base rate the
    // 2-replica fleet can absorb; 0.05 is a clear underload (zero
    // preemptions expected), 1.0 saturates, 8.0 is firm overload —
    // sessions burst in faster than final-length bookings retire, so
    // Reserve head-of-line blocks while Optimistic packs on current
    // footprints and preempts at the KV edge.
    for (double load : {0.05, 1.0, 8.0}) {
        workload::MultiTurnTraceConfig mt;
        mt.base.num_requests = num_sessions;
        mt.base.arrival_rate_per_s = 0.1 * load;
        mt.base.seed = 11;
        mt.turns = 4;
        mt.first_prompt_lo = 2048;
        mt.first_prompt_hi = 8192;
        mt.followup_lo = 64;
        mt.followup_hi = 256;
        mt.gen_lo = 4096;
        mt.gen_hi = 16384;
        mt.think_time_mean_s = 15.0;
        const auto trace = workload::multiTurnTrace(mt);

        for (const Sched &sc : scheds)
            rows.push_back(
                runOne(engine, sc.mode, sc.victim, load, trace));
    }

    bench::section("Preemptive scheduling: mode x victim policy x "
                   "load (2x A800, multi-turn trace)");
    printRows(rows);
    std::printf(
        "\nNotes: goodput = generated tokens / makespan. Reserve "
        "books KV at final length up front\n(small batches, "
        "head-of-line blocking under long-generation load); "
        "Optimistic admits on\ncurrent footprint and preempts "
        "policy-chosen victims when a decode step would\n"
        "oversubscribe HBM — recompute is charged through prefill, "
        "with each replica's prefix\ncache absorbing the prompt and "
        "re-loading hits at %.0f GB/s instead of for free.\n",
        200.0);
    writeJson(rows, out_path);
    return 0;
}
