/**
 * @file
 * Figure 6: (a) KV prefetch latency vs a single LLM layer's inference
 * latency across budgets (the imbalance motivating elastic loading);
 * (b) overlap rate of selected tokens between adjacent generations vs
 * budget, measured live, plus the resulting transfer reduction.
 */
#include "bench/bench_util.h"
#include "core/timing_engine.h"
#include "sim/cost.h"

using namespace specontext;

int
main()
{
    // ---- (a): simulated at paper scale ------------------------------
    bench::section("Fig 6(a): prefetch vs single-layer latency (A800, "
                   "8B, batch 4)");
    const sim::CostModel cost(sim::HardwareSpec::cloudA800(),
                              sim::KernelBackend::FlashInfer);
    const auto m = model::llama31_8bGeometry();
    const int64_t kvb = core::TimingEngine::kvBytesPerTokenPerLayer(m);
    const auto layer =
        cost.decodeStepBreakdown(m, 4, 2048);
    const double layer_ms = 1e3 * layer.total / m.layers;
    std::printf("%-8s %16s %18s\n", "budget", "prefetch-ms/layer",
                "LLM-layer-ms");
    for (int64_t budget : {32, 64, 128, 256, 512, 1024, 2048}) {
        const double prefetch_ms =
            1e3 * cost.pcieSeconds(4 * budget * kvb);
        std::printf("%-8ld %16.3f %18.3f\n", budget, prefetch_ms,
                    layer_ms);
    }
    std::printf("(paper: transfer of large budgets far exceeds layer "
                "compute -> naive prefetch cannot hide)\n");

    // ---- (b): measured live ------------------------------------------
    bench::section("Fig 6(b): adjacent-generation selection overlap vs "
                   "budget (live, 320-token context)");
    bench::LiveStack stack;
    const auto prompt =
        bench::coherentPrompt(320, stack.cfg.vocab, 606);
    const auto ref = stack.engine.buildReference(prompt, 24);

    std::printf("%-8s %10s %14s %16s\n", "budget", "overlap",
                "loaded-tokens", "full-reload");
    for (int64_t budget : {16, 32, 64, 128, 192, 256}) {
        retrieval::RetrievalHead head(stack.dlm, {budget});
        auto run = stack.engine.runWithSpeContext(ref, head, true);
        std::printf("%-8ld %10.3f %14ld %16ld\n", budget,
                    bench::meanOf(run.step_overlap), run.tokens_loaded,
                    run.tokens_full_budget);
    }
    std::printf(
        "(paper: overlap rises with budget to >0.8 on trained LLMs; the "
        "synthetic model\nreproduces the rising shape at lower absolute "
        "values — see EXPERIMENTS.md)\n");
    return 0;
}
