/**
 * @file
 * Figure 9 + Table 4: LongWriter long-generation scores (six proxy
 * dimensions, 0-5 scale) for full attention, Quest, ClusterKV,
 * ShadowKV and SpeContext at budgets {1024, 2048, 4096} (scaled).
 *
 * Reproduces the paper's observation that the prompt-preprocessing
 * baselines produce budget-independent scores in this scenario: the
 * ~100-token instruction is smaller than every budget, so they select
 * all of it and retain every generated token — their outputs equal
 * full attention's regardless of budget (while their throughput gains
 * vanish, see Fig. 10).
 */
#include "bench/bench_util.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/quest.h"
#include "retrieval/shadow_kv.h"
#include "workload/longwriter.h"

using namespace specontext;

namespace {

void
printRow(const char *name, int64_t budget,
         const workload::LongWriterScore &s)
{
    std::printf("%-12s %8ld %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f | %6.2f\n",
                name, budget, s.relevance, s.accuracy, s.coherence,
                s.clarity, s.breadth_depth, s.reading_experience,
                s.average);
}

} // namespace

int
main()
{
    bench::LiveStack stack;
    const auto task = workload::makeLongWriterTask(stack.cfg.vocab, 99);

    // Full-attention reference: free-running output + forced metrics.
    const auto full_out =
        stack.engine.generate(task.prompt, task.steps);
    const auto ref =
        stack.engine.buildReference(task.prompt, task.steps);

    bench::section("Fig 9 / Table 4: LongWriter proxy scores "
                   "(relev/acc/coher/clar/breadth/reading | avg)");
    std::printf("%-12s %8s %6s %6s %6s %6s %6s %6s | %6s\n", "method",
                "budget", "rel", "acc", "coh", "cla", "bre", "rea",
                "avg");

    printRow("Full", 0,
             workload::scoreLongWriter(task, full_out, full_out,
                                       nullptr));

    for (int64_t budget : {48, 96, 192}) { // scaled 1024/2048/4096
        {
            retrieval::QuestRetriever r(budget, 16);
            auto out = stack.engine.generateWithRetriever(
                task.prompt, task.steps, r);
            retrieval::QuestRetriever r2(budget, 16);
            auto forced = stack.engine.runWithRetriever(ref, r2);
            printRow("Quest", budget,
                     workload::scoreLongWriter(task, full_out, out,
                                               &forced));
        }
        {
            retrieval::ClusterKVRetriever r(budget, 16, 4);
            auto out = stack.engine.generateWithRetriever(
                task.prompt, task.steps, r);
            retrieval::ClusterKVRetriever r2(budget, 16, 4);
            auto forced = stack.engine.runWithRetriever(ref, r2);
            printRow("ClusterKV", budget,
                     workload::scoreLongWriter(task, full_out, out,
                                               &forced));
        }
        {
            retrieval::ShadowKVRetriever r(budget);
            auto out = stack.engine.generateWithRetriever(
                task.prompt, task.steps, r);
            retrieval::ShadowKVRetriever r2(budget);
            auto forced = stack.engine.runWithRetriever(ref, r2);
            printRow("ShadowKV", budget,
                     workload::scoreLongWriter(task, full_out, out,
                                               &forced));
        }
        {
            retrieval::RetrievalHead head(stack.dlm, {budget});
            auto out = stack.engine.generate(task.prompt, task.steps,
                                             &head);
            retrieval::RetrievalHead head2(stack.dlm, {budget});
            auto forced = stack.engine.runWithSpeContext(ref, head2);
            printRow("SpeContext", budget,
                     workload::scoreLongWriter(task, full_out, out,
                                               &forced));
        }
        std::printf("\n");
    }
    std::printf("(paper shape: baseline rows identical across budgets "
                "and ~= full; ours slightly below full at the smallest "
                "budget, matching it from mid budgets)\n");
    return 0;
}
