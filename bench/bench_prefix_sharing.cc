/**
 * @file
 * Shared-prefix serving sweep: router policy x per-replica prefix
 * cache budget x prompt-family count on the shared-prefix Poisson
 * trace (K families, Zipf popularity, unique per-request suffixes) —
 * the multi-tenant traffic shape where thousands of requests share a
 * system prompt and full prefill per request is pure waste.
 *
 * The sweep quantifies two effects on a 4x A800 SpeContext fleet:
 *  1. The cache itself: budget 0 (every request pays full prefill)
 *     vs small and ample budgets — hit rate and prefill tokens saved.
 *  2. Routing x cache interaction: round-robin and join-shortest-
 *     queue scatter each family across the fleet (every replica pays
 *     every family's cold prefill, and a small budget thrashes),
 *     while prefix-affinity gives each family one sticky warm home —
 *     the p99 TTFT gap is the headline.
 *
 * Writes BENCH_prefix.json (override with argv[1]); argv[2] shrinks
 * the trace for CI smoke runs.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica(int64_t cache_budget_bytes)
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    rc.timing.system = core::SystemRegistry::create("SpeContext");
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = cache_budget_bytes;
    rc.prefix_cache.page_size = 16;
    return rc;
}

struct Row
{
    std::string policy;
    int64_t families = 0;
    double budget_gib = 0.0;
    serving::ServingSummary s;
    serving::PrefixCacheStats prefix;
    int64_t rejected = 0;
};

Row
runOne(const core::TimingEngine &engine, serving::RouterPolicy policy,
       int64_t families, double budget_gib,
       const std::vector<serving::Request> &trace)
{
    const int64_t budget_bytes =
        static_cast<int64_t>(budget_gib * (1LL << 30));
    serving::ClusterConfig cc;
    cc.replicas = {cloudReplica(budget_bytes),
                   cloudReplica(budget_bytes),
                   cloudReplica(budget_bytes),
                   cloudReplica(budget_bytes)};
    cc.router.policy = policy;
    const serving::ClusterResult r =
        serving::Cluster(engine, cc).run(trace);
    Row row;
    row.policy = serving::routerPolicyName(policy);
    row.families = families;
    row.budget_gib = budget_gib;
    row.s = r.summary();
    row.prefix = r.fleet.prefix;
    row.rejected = static_cast<int64_t>(r.fleet.rejected.size());
    return row;
}

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-20s %4s %7s %8s %12s %9s %9s %9s %9s\n", "policy",
                "K", "budget", "hit_rate", "saved_tok", "ttft_avg",
                "ttft_p99", "e2e_p99", "tpot_ms");
    for (const Row &r : rows) {
        std::printf(
            "%-20s %4ld %6.1fG %8.3f %12ld %9.2f %9.2f %9.2f %9.2f\n",
            r.policy.c_str(), r.families, r.budget_gib,
            r.prefix.hitRate(), r.prefix.hit_tokens, r.s.ttft_mean,
            r.s.ttft_p99, r.s.e2e_p99, r.s.tpot_mean * 1e3);
    }
}

void
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const Row &r : rows) {
        obs::JsonRow row;
        row.str("policy", r.policy)
            .num("families", r.families)
            .num("cache_budget_gib", r.budget_gib, "%.1f")
            .num("replicas", static_cast<int64_t>(4))
            .str("trace", "shared-prefix")
            .num("hit_rate", r.prefix.hitRate(), "%.4f")
            .num("prefill_tokens_saved", r.prefix.hit_tokens)
            .num("hit_requests", r.prefix.hit_requests)
            .num("lookups", r.prefix.lookups)
            .num("evicted_tokens", r.prefix.evicted_tokens)
            .num("throughput_tokens_per_s",
                 r.s.throughput_tokens_per_s, "%.2f")
            .num("ttft_mean_s", r.s.ttft_mean, "%.3f")
            .num("ttft_p50_s", r.s.ttft_p50, "%.3f")
            .num("ttft_p95_s", r.s.ttft_p95, "%.3f")
            .num("ttft_p99_s", r.s.ttft_p99, "%.3f")
            .num("e2e_p99_s", r.s.e2e_p99, "%.3f")
            .num("tpot_mean_s", r.s.tpot_mean, "%.5f")
            .num("completed", r.s.completed)
            .num("rejected", r.rejected)
            .num("makespan_s", r.s.makespan_seconds, "%.2f");
        out.push_back(row.render());
    }
    bench::writeBenchJson(path, "prefix_sharing", "4x cloudA800", out);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_prefix.json";
    const int64_t num_requests = argc > 2 ? std::atoll(argv[2]) : 192;
    core::TimingEngine engine;

    const auto policies = {serving::RouterPolicy::RoundRobin,
                           serving::RouterPolicy::JoinShortestQueue,
                           serving::RouterPolicy::PrefixAffinity};

    std::vector<Row> rows;
    for (int64_t families : {4, 16}) {
        workload::SharedPrefixTraceConfig pc;
        pc.base.num_requests = num_requests;
        pc.base.arrival_rate_per_s = 4.0;
        pc.base.seed = 7;
        pc.num_families = families;
        pc.prefix_len = 4096;
        pc.suffix_lo = 64;
        pc.suffix_hi = 256;
        pc.gen_lo = 32;
        pc.gen_hi = 128;
        const auto trace = workload::sharedPrefixTrace(pc);

        // Budget sweep: disabled / ~4 family prefixes per replica
        // (4096 tokens x 128 KiB/token = 512 MiB each) / ample.
        for (double budget_gib : {0.0, 2.0, 8.0}) {
            for (auto policy : policies)
                rows.push_back(runOne(engine, policy, families,
                                      budget_gib, trace));
        }
    }

    bench::section("Shared-prefix serving: router policy x cache "
                   "budget x family count (4x A800, Zipf families)");
    printRows(rows);
    std::printf(
        "\nNotes: K = prompt families (Zipf-popular 4096-token shared "
        "prefixes + unique suffixes).\nhit_rate = cached prompt tokens "
        "/ all prompt tokens; saved_tok = prefill tokens skipped.\n"
        "With budget 0 the cache is off and prefix-affinity degrades "
        "to least-kv-load. Oblivious\npolicies pay each family's cold "
        "prefill once per replica and thrash small budgets;\n"
        "prefix-affinity pins each family to one warm home, which is "
        "where the p99 TTFT gap\ncomes from.\n");
    writeJson(rows, out_path);
    return 0;
}
