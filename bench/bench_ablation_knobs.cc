/**
 * @file
 * Ablation of the synthetic-substrate design knobs DESIGN.md calls
 * out, so reviewers can see how much each structural assumption
 * carries:
 *
 *  - retrieval_affinity (W_q/W_k coupling): what makes attention a
 *    similarity kernel — needle retrieval should collapse without it;
 *  - residual_scale (embedding-dominated residual stream): the
 *    "homology" that lets an embedding-reading DLM mimic the deep
 *    model — DLM hit rate should fall as residuals grow;
 *  - key_spike (low-frequency heavy-hitter structure): selection
 *    stability across steps;
 *  - distill quality: fidelity of the constructed DLM.
 *
 * Plus the speculative-decoding extension (core/speculative.h): one
 * DLM providing both draft tokens and context sparsity.
 */
#include "bench/bench_util.h"
#include "core/speculative.h"
#include "workload/metrics.h"
#include "workload/tasks.h"

using namespace specontext;

namespace {

struct Probe
{
    double top1;
    double hit;
    double overlap;
    double needle;
};

Probe
probe(const model::InitOptions &io, float quality = 1.0f)
{
    const auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    const auto llm = model::Transformer::randomInit(cfg, 42, io);
    const auto dlm = model::distill(llm, {quality, 7});
    core::LiveEngine eng(llm);

    workload::TaskGenerator gen(cfg.vocab, 303);
    auto task = gen.triviaQa(224);
    task.answer_steps = 12;
    const auto ref = eng.buildReference(task.prompt, task.answer_steps,
                                        true);

    retrieval::RetrievalHead head(dlm, {64});
    auto run = eng.runWithSpeContext(ref, head);

    double hit = 0.0;
    for (size_t i = 0; i < ref.attention.size(); ++i) {
        auto truth = workload::trueTopKPerHead(ref.attention[i],
                                               cfg.groups(), 64);
        hit += workload::hitRate(run.step_selections[i], truth);
    }
    hit /= static_cast<double>(ref.attention.size());

    return {run.top1_agreement, hit, bench::meanOf(run.step_overlap),
            workload::needleRecall(run.step_selections,
                                   task.needle_positions)};
}

void
row(const char *label, double value, const Probe &p)
{
    std::printf("%-18s %8.2f %8.3f %8.3f %8.3f %8.3f\n", label, value,
                p.top1, p.hit, p.overlap, p.needle);
}

} // namespace

int
main()
{
    std::printf("%-18s %8s %8s %8s %8s %8s\n", "knob", "value", "top1",
                "hit", "overlap", "needle");

    bench::section("retrieval_affinity (QK coupling)");
    for (float a : {0.0f, 0.35f, 0.7f, 1.0f}) {
        model::InitOptions io;
        io.retrieval_affinity = a;
        row("affinity", a, probe(io));
    }

    bench::section("residual_scale (embedding dominance)");
    for (float r : {0.1f, 0.35f, 0.7f, 1.2f}) {
        model::InitOptions io;
        io.residual_scale = r;
        row("residual", r, probe(io));
    }

    bench::section("key_spike (heavy-hitter structure)");
    for (float s : {0.0f, 0.5f, 1.0f, 2.0f}) {
        model::InitOptions io;
        io.key_spike = s;
        row("spike", s, probe(io));
    }

    bench::section("distill quality (constructed DLM fidelity)");
    for (float q : {0.0f, 0.5f, 1.0f}) {
        row("quality", q, probe(model::InitOptions(), q));
    }

    // --- Extension: speculative decoding + context sparsity ----------
    bench::section("extension: speculative decoding with the same DLM");
    const auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    const auto llm = model::Transformer::randomInit(cfg, 42);
    Rng rng(11);
    std::vector<int32_t> prompt;
    for (int i = 0; i < 64; ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));

    std::printf("%-10s %10s %12s %14s\n", "quality", "accept",
                "tok/round", "LLM-step-save");
    for (float q : {0.0f, 0.5f, 1.0f}) {
        const auto dlm = model::distill(llm, {q, 7});
        core::SpeculativeDecoder dec(llm, dlm, {4, 0});
        const auto r = dec.generate(prompt, 96);
        // Tokens emitted per LLM verification round >= 1; the save is
        // the fraction of sequential LLM rounds avoided vs greedy.
        std::printf("%-10.2f %10.3f %12.3f %13.1f%%\n", q,
                    r.acceptanceRate(), r.tokensPerRound(),
                    100.0 * (1.0 - static_cast<double>(r.llm_rounds) /
                                       static_cast<double>(
                                           r.tokens.size())));
    }
    std::printf("(the paper's EAGLE-3 DLM natively drafts; this "
                "extension shows one distilled model powering both "
                "speculations)\n");
    return 0;
}
