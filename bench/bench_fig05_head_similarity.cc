/**
 * @file
 * Figure 5(a): head-level vs batch-level retrieval quality vs budget —
 * attention-weight accumulation (share of the teacher's attention mass
 * the selection captures) and hit rate of the ground-truth important
 * tokens. Also sweeps the distillation-quality knob, the measurable
 * version of the §3.2 similarity claim.
 */
#include "bench/bench_util.h"
#include "workload/metrics.h"

using namespace specontext;

namespace {

struct Quality
{
    double recall; // attention mass captured
    double hit;    // ground-truth top-k coverage
    double top1;   // downstream fidelity
};

Quality
evaluate(bench::LiveStack &stack, const core::Reference &ref,
         const model::Transformer &dlm, int64_t budget,
         retrieval::RetrievalLevel level)
{
    retrieval::RetrievalHead head(dlm, {budget, level, 0});
    auto run = stack.engine.runWithSpeContext(ref, head);
    double recall = 0.0, hit = 0.0;
    for (size_t i = 0; i < ref.attention.size(); ++i) {
        recall += workload::attentionRecall(run.step_selections[i],
                                            ref.attention[i],
                                            stack.cfg.groups());
        auto truth = workload::trueTopKPerHead(
            ref.attention[i], stack.cfg.groups(), budget);
        hit += workload::hitRate(run.step_selections[i], truth);
    }
    const double n = static_cast<double>(ref.attention.size());
    return {recall / n, hit / n, run.top1_agreement};
}

} // namespace

int
main()
{
    bench::LiveStack stack;
    const auto prompt =
        bench::coherentPrompt(320, stack.cfg.vocab, 2025);
    const auto ref = stack.engine.buildReference(prompt, 16, true);

    bench::section(
        "Fig 5(a): head-level vs batch-level, budgets 16..256 "
        "(320-token context)");
    std::printf("%-8s | %10s %8s %8s | %10s %8s %8s\n", "budget",
                "hd-recall", "hd-hit", "hd-top1", "bt-recall", "bt-hit",
                "bt-top1");
    for (int64_t budget : {16, 32, 64, 128, 192, 256}) {
        const auto h = evaluate(stack, ref, stack.dlm, budget,
                                retrieval::RetrievalLevel::HeadLevel);
        const auto b = evaluate(stack, ref, stack.dlm, budget,
                                retrieval::RetrievalLevel::BatchLevel);
        std::printf("%-8ld | %10.3f %8.3f %8.3f | %10.3f %8.3f %8.3f\n",
                    budget, h.recall, h.hit, h.top1, b.recall, b.hit,
                    b.top1);
    }
    std::printf("(paper: both curves rise with budget; head-level sits "
                "above batch-level)\n");

    bench::section("distill-quality sweep (budget 64): the §3.2 claim");
    std::printf("%-10s %10s %8s %8s\n", "quality", "recall", "hit",
                "top1");
    for (float q : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
        const auto dlm = model::distill(stack.llm, {q, 7});
        const auto r = evaluate(stack, ref, dlm, 64,
                                retrieval::RetrievalLevel::HeadLevel);
        std::printf("%-10.2f %10.3f %8.3f %8.3f\n", q, r.recall, r.hit,
                    r.top1);
    }
    std::printf("(higher distillation quality -> higher similarity of "
                "information focus)\n");

    bench::section("pruning accounting (Fig 5(a) 'Pruned', §7.4)");
    retrieval::RetrievalHead head(stack.dlm, {64});
    std::printf("full DLM params:       %ld\n", head.dlmParameterCount());
    std::printf("pruned head params:    %ld (%.1f%% reduction)\n",
                head.prunedParameterCount(),
                100.0 * (1.0 - double(head.prunedParameterCount()) /
                                   double(head.dlmParameterCount())));
    const auto base8b = model::llama31_8bGeometry();
    std::printf("at 8B geometry: head %.3fB params ≈ %.0f MB FP16 "
                "(paper: ~0.03B, ~60 MB)\n",
                model::prunedRetrievalHeadParams(base8b) / 1e9,
                2.0 * model::prunedRetrievalHeadParams(base8b) / 1e6);
    return 0;
}
