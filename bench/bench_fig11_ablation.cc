/**
 * @file
 * Figure 11: ablation of the three contributions on the
 * DeepSeek-Distill-Llama-8B geometry, four workloads, batch as in
 * Table 3's best SpeContext configuration:
 *   HF (eager full attention, offload when needed)
 *   -> +C1 (lightweight retrieval head, synchronous loading)
 *   -> +C1+C2 (async prefetch + elastic loading)
 *   -> +C1+C2+C3 (adaptive memory management).
 */
#include "bench/bench_util.h"
#include "serving/batch_sweep.h"

using namespace specontext;

namespace {

/** SpeContext instance with the given ablation stage enabled. */
std::shared_ptr<const core::SystemModel>
speContextStage(bool c2, bool c3, double overlap = 0.85,
                int64_t budget = 2048)
{
    core::SystemOptions o;
    o.budget = budget;
    o.elastic_overlap = overlap;
    o.features = {true, c2, c3};
    return core::SystemRegistry::create("SpeContext", o);
}

} // namespace

int
main()
{
    bench::section("Fig 11: ablation (A800, DeepSeek-8B geometry, "
                   "batch 32, HF = eager with complete offloading, "
                   "tokens/s)");
    core::TimingEngine te;
    std::printf("%-10s %14s %14s %14s %14s\n", "workload", "HF", "+C1",
                "+C1+C2", "+C1+C2+C3");
    for (const auto &w : serving::paperWorkloads()) {
        core::TimingConfig tc;
        tc.llm = model::geometryPreset("DeepSeek-Distill-Llama-8B");
        tc.hw = sim::HardwareSpec::cloudA800();
        tc.prompt_len = w.prompt_len;
        tc.gen_len = w.gen_len;

        // All stages at the paper's batch 32 under memory pressure;
        // the HF anchor is eager full attention *with complete
        // offloading*, the baseline §7.5.3 names for this figure.
        tc.batch = 32;
        core::SystemOptions hf_opts;
        hf_opts.budget = 2048;
        hf_opts.allow_full_attention_offload = true;
        tc.system = core::SystemRegistry::create("FullAttn(Eager)",
                                                 hf_opts);
        const auto hf = te.simulate(tc);

        tc.system = speContextStage(false, false);
        const auto c1 = te.simulate(tc);
        tc.system = speContextStage(true, false);
        const auto c12 = te.simulate(tc);
        tc.system = speContextStage(true, true);
        const auto c123 = te.simulate(tc);

        auto cell = [](const core::TimingResult &r) {
            return r.oom ? std::string("OOM")
                         : std::to_string(
                               static_cast<int64_t>(r.throughput));
        };
        std::printf("%-10s %14s %14s %14s %14s", w.label().c_str(),
                    cell(hf).c_str(), cell(c1).c_str(),
                    cell(c12).c_str(), cell(c123).c_str());
        if (!hf.oom && !c123.oom)
            std::printf("   (%.2fx overall)",
                        c123.throughput / hf.throughput);
        std::printf("\n");
    }
    std::printf("\n(paper: staircase 1.00x -> ~9x (C1) -> ~14x (C2) -> "
                "up to 24.89x (C3) on [2k,32k])\n");

    bench::section("elastic-loading ablation detail (C2), [2k,32k], "
                   "batch 32, low-memory regime");
    core::TimingConfig tc;
    tc.llm = model::geometryPreset("DeepSeek-Distill-Llama-8B");
    tc.hw = sim::HardwareSpec::cloudA800();
    tc.hw.gpu_mem_bytes = 48LL << 30; // force offloading
    tc.prompt_len = 2048;
    tc.gen_len = 32768;
    tc.batch = 16;
    std::printf("%-28s %12s\n", "variant", "tokens/s");
    tc.system = speContextStage(false, false);
    std::printf("%-28s %12.1f\n", "sync full-budget loading",
                te.simulate(tc).throughput);
    tc.system = speContextStage(true, true, 0.0);
    std::printf("%-28s %12.1f\n", "async, no reuse",
                te.simulate(tc).throughput);
    tc.system = speContextStage(true, true, 0.85);
    std::printf("%-28s %12.1f\n", "async + elastic (85% reuse)",
                te.simulate(tc).throughput);
    return 0;
}
