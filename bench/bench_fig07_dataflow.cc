/**
 * @file
 * Figure 7: per-token timelines of the five dataflow families on the
 * two-stream simulator, with per-tag busy time and exposed (unhidden)
 * transfer.
 */
#include "bench/bench_util.h"
#include "core/dataflow.h"

using namespace specontext;

int
main()
{
    bench::section("Fig 7: dataflow timelines (A800, 8B, 32K context, "
                   "budget 2048, KV offloaded)");
    core::DataflowParams p;
    p.llm = model::llama31_8bGeometry();
    p.hw = sim::HardwareSpec::cloudA800();
    p.seq_len = 32768;
    p.budget = 2048;

    std::printf("%-20s %12s %12s %12s %12s\n", "dataflow", "token-ms",
                "compute-ms", "copy-ms", "exposed-ms");
    const core::DataflowKind kinds[] = {
        core::DataflowKind::PrefetchFullKV,
        core::DataflowKind::FetchSparseKV,
        core::DataflowKind::PrefetchSparseKV,
        core::DataflowKind::PrefetchSparseV,
        core::DataflowKind::SpeContextElastic,
    };
    double base = 0.0;
    for (auto k : kinds) {
        const auto r = core::simulateTokenDataflow(k, p);
        if (k == core::DataflowKind::PrefetchFullKV)
            base = r.token_seconds;
        std::printf("%-20s %12.3f %12.3f %12.3f %12.3f   (%.2fx)\n",
                    core::dataflowKindName(k), 1e3 * r.token_seconds,
                    1e3 * r.compute_busy, 1e3 * r.copy_busy,
                    1e3 * r.exposed_transfer, base / r.token_seconds);
    }
    std::printf("(paper Fig. 7 ordering: (a) worst ... (e) SpeContext "
                "best via data independence + elastic transfer)\n");

    bench::section("elastic-overlap sensitivity (SpeContext row)");
    std::printf("%-10s %12s\n", "overlap", "token-ms");
    for (double ov : {0.0, 0.25, 0.5, 0.75, 0.85, 0.95}) {
        p.elastic_overlap = ov;
        const auto r = core::simulateTokenDataflow(
            core::DataflowKind::SpeContextElastic, p);
        std::printf("%-10.2f %12.3f\n", ov, 1e3 * r.token_seconds);
    }
    return 0;
}
