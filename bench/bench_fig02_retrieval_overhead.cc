/**
 * @file
 * Figure 2(a): the three challenges quantified.
 *
 *  ① per-layer retrieve-and-load overhead (up to ~60 % of decode
 *    latency) for the baseline paradigm, vs depth;
 *  ② complete retention of new KV: effective attended length of the
 *    baselines grows with generation while SpeContext's stays at B;
 *  ③ the >80 % throughput cliff when a tiny length increase flips a
 *    static offload decision (45.3 -> 9.7 tok/s in the paper's
 *    annotation).
 */
#include "bench/bench_util.h"
#include "core/dataflow.h"
#include "core/timing_engine.h"

using namespace specontext;

namespace {

void
challenge1()
{
    bench::section("Fig 2(a)-①: layer-wise retrieval overhead vs depth");
    std::printf("%-8s %14s %14s %12s\n", "layers", "token-ms",
                "retr+load-ms", "overhead");
    for (int64_t layers : {8, 16, 32, 64}) {
        core::DataflowParams p;
        p.llm = model::llama31_8bGeometry();
        p.llm.layers = layers;
        p.hw = sim::HardwareSpec::cloudA800();
        p.seq_len = 32768;
        p.budget = 2048;
        const auto r = core::simulateTokenDataflow(
            core::DataflowKind::FetchSparseKV, p);
        const double rl = r.by_tag.at("retrieval") +
                          r.by_tag.at("sync") + r.exposed_transfer;
        std::printf("%-8ld %14.3f %14.3f %11.1f%%\n", layers,
                    1e3 * r.token_seconds, 1e3 * rl,
                    100.0 * rl / r.token_seconds);
    }
    std::printf("(paper: overhead scales with depth, up to ~60%%)\n");
}

void
challenge2()
{
    bench::section("Fig 2(a)-②: retained new KV grows the attended set");
    core::TimingEngine te;
    std::printf("%-10s %18s %18s\n", "generated", "baseline attended",
                "SpeContext attended");
    for (int64_t g : {0, 4096, 16384, 32768}) {
        // Baselines attend budget + every generated token; ours a
        // fixed budget (the retrieval head ranks new tokens too).
        std::printf("%-10ld %18ld %18ld\n", g, 2048 + g, (int64_t)2048);
    }

    std::printf("\nthroughput impact ([2k in] growing output, batch 4, "
                "A800, 8B):\n");
    std::printf("%-10s %14s %14s\n", "out-len", "ShadowKV tok/s",
                "SpeContext tok/s");
    core::SystemOptions opts;
    opts.budget = 2048;
    for (int64_t out : {4096, 16384, 32768}) {
        core::TimingConfig tc;
        tc.llm = model::llama31_8bGeometry();
        tc.hw = sim::HardwareSpec::cloudA800();
        tc.batch = 4;
        tc.prompt_len = 2048;
        tc.gen_len = out;
        tc.system = core::SystemRegistry::create("ShadowKV", opts);
        const double shadow = te.simulate(tc).throughput;
        tc.system = core::SystemRegistry::create("SpeContext", opts);
        const double ours = te.simulate(tc).throughput;
        std::printf("%-10ld %14.1f %14.1f\n", out, shadow, ours);
    }
}

void
challenge3()
{
    bench::section(
        "Fig 2(a)-③: static offload cliff vs adaptive (8B, 4 req, A800)");
    core::TimingEngine te;
    core::TimingConfig tc;
    tc.llm = model::deepseekDistillLlama8bGeometry();
    tc.hw = sim::HardwareSpec::cloudA800();
    tc.batch = 4;
    tc.gen_len = 2048;
    core::SystemOptions opts;
    opts.elastic_overlap = 0.3; // keep transfers visible
    opts.budget = 8192;

    std::printf("%-12s %16s %16s\n", "context", "static tok/s",
                "adaptive tok/s");
    double before = 0.0, after = 0.0;
    for (int64_t ctx : {98304, 102400, 106496, 110592, 122880}) {
        tc.prompt_len = ctx;
        opts.features = {true, true, false}; // static pre-decision
        tc.system = core::SystemRegistry::create("SpeContext", opts);
        const auto stat = te.simulate(tc);
        opts.features = {true, true, true};
        tc.system = core::SystemRegistry::create("SpeContext", opts);
        const auto adp = te.simulate(tc);
        std::printf("%-12ld %16.1f %16.1f\n", ctx, stat.throughput,
                    adp.throughput);
        if (ctx == 102400)
            before = stat.throughput;
        if (ctx == 110592)
            after = stat.throughput;
    }
    std::printf("static cliff across the boundary: %.1f -> %.1f tok/s "
                "(%.0f%% drop; paper: 45.3 -> 9.7, >80%%)\n",
                before, after, 100.0 * (1.0 - after / before));
}

} // namespace

int
main()
{
    challenge1();
    challenge2();
    challenge3();
    return 0;
}
