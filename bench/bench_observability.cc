/**
 * @file
 * Observability overhead: the bench_preemption overload workload (2x
 * A800, Optimistic admission, multi-turn trace at firm overload — the
 * event-densest regime: every preempt/restore/prefix path fires) run
 * twice on identical inputs, once with all observability hooks null
 * and once with a Trace + CounterRegistry + TimeseriesSampler
 * attached. Both runs must produce bit-identical serving results (the
 * run aborts if they diverge); the published number is the wall-time
 * delta of the observed run, median-of-N interleaved reps per side
 * (medians cannot be dragged negative by one lucky rep the way
 * best-of could; noise_floor_pct publishes the baseline's rep spread
 * so a delta below it reads as noise, not signal), with events/s and
 * bytes/event alongside so emit() cost stays an explicit budget.
 *
 * Also writes the observed run's artifacts next to the JSON — the
 * Chrome trace (open at https://ui.perfetto.dev), the counters dump
 * and the time-series CSV — which CI parses back to validate the
 * exporter schema.
 *
 * Writes BENCH_obs.json (override with argv[1]; sibling artifacts
 * derive from that path); argv[2] shrinks the session count and
 * argv[3] the rep count for CI smoke runs.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/export.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.allow_full_attention_offload = false;
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.prefix_cache.page_size = 16;
    rc.scheduler_mode = serving::SchedulerMode::Optimistic;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

std::vector<serving::Request>
overloadTrace(int64_t num_sessions)
{
    // bench_preemption's load=8.0 point: sessions burst in faster than
    // the fleet retires them, so Optimistic preempts at the KV edge
    // and every event type except Reject fires.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = num_sessions;
    mt.base.arrival_rate_per_s = 0.8;
    mt.base.seed = 11;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.followup_lo = 64;
    mt.followup_hi = 256;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 15.0;
    return workload::multiTurnTrace(mt);
}

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Bitwise equality of the serving outcomes both runs must share —
 *  instrumentation that shifted any of these changed the simulation. */
bool
identicalResults(const serving::ClusterResult &x,
                 const serving::ClusterResult &y)
{
    const serving::ServingSummary a = x.summary();
    const serving::ServingSummary b = y.summary();
    if (a.completed != b.completed ||
        a.makespan_seconds != b.makespan_seconds ||
        a.throughput_tokens_per_s != b.throughput_tokens_per_s ||
        a.ttft_mean != b.ttft_mean || a.ttft_p99 != b.ttft_p99 ||
        a.e2e_p99 != b.e2e_p99 || a.tpot_mean != b.tpot_mean)
        return false;
    if (x.fleet.preempt.preemptions != y.fleet.preempt.preemptions ||
        x.fleet.preempt.recompute_tokens !=
            y.fleet.preempt.recompute_tokens ||
        x.placements.size() != y.placements.size())
        return false;
    for (size_t i = 0; i < x.placements.size(); ++i) {
        if (x.placements[i].request_id != y.placements[i].request_id ||
            x.placements[i].replica != y.placements[i].replica)
            return false;
    }
    return true;
}

/** Median of `v` (mean of the middle two for even counts). */
double
medianMs(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t mid = v.size() / 2;
    return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/** `path` with its ".json" suffix swapped for `suffix` (or appended). */
std::string
sibling(const std::string &path, const std::string &suffix)
{
    const std::string tail = ".json";
    if (path.size() >= tail.size() &&
        path.compare(path.size() - tail.size(), tail.size(), tail) == 0)
        return path.substr(0, path.size() - tail.size()) + suffix;
    return path + suffix;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
    const int64_t num_sessions = argc > 2 ? std::atoll(argv[2]) : 12;
    const int reps = argc > 3 ? std::atoi(argv[3]) : 5;

    core::TimingEngine engine;
    const auto trace = overloadTrace(num_sessions);

    serving::ClusterConfig cc;
    cc.replicas = {cloudReplica(), cloudReplica()};
    cc.router.policy = serving::RouterPolicy::LeastKvLoad;
    const serving::Cluster cluster(engine, cc);

    // Two stacks: baseline with all hooks null — the shipping default
    // every BENCH_*.json is generated under — and observed with every
    // layer attached.
    serving::ClusterResult base_result = cluster.run(trace);
    obs::Trace ring({1 << 20});
    obs::CounterRegistry counters;
    obs::TimeseriesSampler sampler(&counters, {10.0, 1 << 16});
    serving::ClusterConfig oc = cc;
    oc.obs = {&ring, &counters, &sampler};
    const serving::Cluster observed(engine, oc);
    serving::ClusterResult obs_result = observed.run(trace);
    const uint64_t events_per_run = ring.emitted();

    // Interleaved timed reps after the untimed warmups above: pairing
    // the sides inside each rep exposes both to the same machine
    // drift, and the median per side keeps one noisy rep from setting
    // the headline (best-of used to let the *baseline's* luckiest rep
    // drive wall_delta_pct negative). Fresh ring state per rep so
    // each observed run records the same stream (emitted() proves it:
    // reps * per-run).
    std::vector<double> base_reps, obs_reps;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        base_result = cluster.run(trace);
        base_reps.push_back(wallMs(t0));
        ring.clear();
        t0 = std::chrono::steady_clock::now();
        obs_result = observed.run(trace);
        obs_reps.push_back(wallMs(t0));
    }
    const double base_ms = medianMs(base_reps);
    const double obs_ms = medianMs(obs_reps);
    // Rep-to-rep spread of the baseline (the delta's denominator): a
    // wall_delta_pct smaller than this is measurement noise.
    const double noise_floor_pct =
        base_ms > 0.0
            ? (*std::max_element(base_reps.begin(), base_reps.end()) -
               *std::min_element(base_reps.begin(), base_reps.end())) /
                  base_ms * 100.0
            : 0.0;

    if (!identicalResults(base_result, obs_result)) {
        std::fprintf(stderr,
                     "FAIL: observed run diverged from baseline — "
                     "instrumentation perturbed the simulation\n");
        return 1;
    }

    const double delta_pct =
        base_ms > 0.0 ? (obs_ms - base_ms) / base_ms * 100.0 : 0.0;
    const double events_per_s =
        obs_ms > 0.0 ? static_cast<double>(events_per_run) /
                           (obs_ms / 1e3)
                     : 0.0;
    const serving::ServingSummary s = obs_result.summary();

    bench::section("Observability overhead (2x A800 Optimistic "
                   "overload, median of " +
                   std::to_string(reps) + ")");
    std::printf("%-28s %12s\n", "metric", "value");
    std::printf("%-28s %12.2f\n", "baseline_wall_ms", base_ms);
    std::printf("%-28s %12.2f\n", "observed_wall_ms", obs_ms);
    std::printf("%-28s %12.2f\n", "wall_delta_pct", delta_pct);
    std::printf("%-28s %12.2f\n", "noise_floor_pct", noise_floor_pct);
    std::printf("%-28s %12llu\n", "events_per_run",
                static_cast<unsigned long long>(events_per_run));
    std::printf("%-28s %12.0f\n", "events_per_wall_s", events_per_s);
    std::printf("%-28s %12zu\n", "bytes_per_event",
                sizeof(obs::TraceEvent));
    std::printf("%-28s %12zu\n", "counters", counters.size());
    std::printf("%-28s %12zu\n", "timeseries_rows",
                sampler.samples().size());
    std::printf("%-28s %12s\n", "bit_identical", "true");

    // The observed run's artifacts ride next to the JSON: the Chrome
    // trace CI re-parses, the counters dump, the time-series CSV.
    const std::string trace_path = sibling(out_path, ".trace.json");
    const std::string counters_path =
        sibling(out_path, ".counters.json");
    const std::string csv_path = sibling(out_path, ".timeseries.csv");
    bool artifacts_ok =
        obs::writeChromeTrace(ring, trace_path,
                              {"replica0 (A800)", "replica1 (A800)"});
    artifacts_ok =
        obs::writeCountersJson(counters, counters_path) && artifacts_ok;
    artifacts_ok =
        obs::writeTimeseriesCsv(sampler, csv_path) && artifacts_ok;
    std::printf("\nArtifacts: %s (Perfetto), %s, %s\n",
                trace_path.c_str(), counters_path.c_str(),
                csv_path.c_str());

    obs::JsonRow row;
    row.str("workload", "multi-turn overload")
        .num("sessions", num_sessions)
        .num("replicas", static_cast<int64_t>(2))
        .num("reps", static_cast<int64_t>(reps))
        .num("baseline_wall_ms", base_ms, "%.2f")
        .num("observed_wall_ms", obs_ms, "%.2f")
        .num("wall_delta_pct", delta_pct, "%.2f")
        .num("noise_floor_pct", noise_floor_pct, "%.2f")
        .num("events_per_run", static_cast<int64_t>(events_per_run))
        .num("events_retained", static_cast<int64_t>(ring.size()))
        .num("events_dropped", static_cast<int64_t>(ring.dropped()))
        .num("events_per_wall_s", events_per_s, "%.0f")
        .num("bytes_per_event",
             static_cast<int64_t>(sizeof(obs::TraceEvent)))
        .num("counters", static_cast<int64_t>(counters.size()))
        .num("timeseries_rows",
             static_cast<int64_t>(sampler.samples().size()))
        .boolean("bit_identical", true)
        .boolean("artifacts_written", artifacts_ok)
        .num("completed", s.completed)
        .num("preemptions", obs_result.fleet.preempt.preemptions)
        .num("makespan_s", s.makespan_seconds, "%.2f");
    bench::writeBenchJson(out_path, "observability_overhead",
                          "2x cloudA800", {row.render()});

    std::printf("\nNotes: identical trace served twice — hooks null "
                "vs Trace+CounterRegistry+Sampler attached;\nserving "
                "results are asserted bitwise-equal before the delta "
                "is reported. Wall times are\nmedian-of-%d interleaved "
                "reps after untimed warmups; a wall_delta_pct below "
                "noise_floor_pct\nis measurement noise; events/s is "
                "the observed run's emit throughput.\n",
                reps);
    return artifacts_ok ? 0 : 1;
}
