/**
 * @file
 * Table 3: multi-request cloud throughput for DeepSeek-Distill-Llama-8B
 * and Qwen3-8B geometries, four [in, out] workloads, across EVERY
 * system in SystemRegistry::names() (the paper's five columns plus the
 * single-request baselines it marks '-' and the H2O/StreamingLLM
 * eviction baselines). Each cell is the best feasible batch from the
 * paper's batch sweep (batch in grey, speedup vs eager in parentheses,
 * as in the paper). Writes machine-readable cells to BENCH_table3.json
 * (override with argv[1]).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serving/batch_sweep.h"

using namespace specontext;

namespace {

struct Cell
{
    std::string model;
    std::string workload;
    std::string system;
    bool feasible = false;
    int64_t batch = 0;
    double throughput = 0.0;
    double speedup_vs_eager = 0.0;
};

std::vector<Cell> g_cells;

void
table(const model::ModelConfig &m)
{
    bench::section("Table 3: " + m.name + " (A800, tokens/s @ best "
                                          "feasible batch)");
    core::TimingEngine te;
    // Eager is the paper's speedup anchor; list it first, then every
    // other registered system.
    std::vector<std::string> systems = {"FullAttn(Eager)"};
    for (const std::string &name : core::SystemRegistry::names()) {
        if (name != "FullAttn(Eager)")
            systems.push_back(name);
    }

    std::printf("%-10s", "workload");
    for (const auto &s : systems)
        std::printf(" %24s", s.c_str());
    std::printf("\n");

    core::SystemOptions opts;
    opts.budget = 2048;
    for (const auto &w : serving::paperWorkloads()) {
        std::printf("%-10s", w.label().c_str());
        double eager_tp = 0.0;
        for (const auto &sys : systems) {
            core::TimingConfig tc;
            tc.llm = m;
            tc.hw = sim::HardwareSpec::cloudA800();
            tc.system = core::SystemRegistry::create(sys, opts);
            tc.prompt_len = w.prompt_len;
            tc.gen_len = w.gen_len;
            Cell cell{m.name, w.label(), sys, false, 0, 0.0, 0.0};
            const auto sweep = serving::sweepBatches(
                te, tc, serving::paperBatchSizes());
            if (!sweep.feasible()) {
                std::printf(" %24s", "OOM");
                g_cells.push_back(cell);
                continue;
            }
            const auto &best = sweep.bestPoint();
            if (sys == "FullAttn(Eager)")
                eager_tp = best.result.throughput;
            cell.feasible = true;
            cell.batch = best.batch;
            cell.throughput = best.result.throughput;
            char text[64];
            if (eager_tp > 0.0) {
                cell.speedup_vs_eager =
                    best.result.throughput / eager_tp;
                std::snprintf(text, sizeof(text), "%.1f(%ld,%.2fx)",
                              best.result.throughput, best.batch,
                              cell.speedup_vs_eager);
            } else {
                std::snprintf(text, sizeof(text), "%.1f(%ld)",
                              best.result.throughput, best.batch);
            }
            std::printf(" %24s", text);
            g_cells.push_back(cell);
        }
        std::printf("\n");
    }
}

void
writeJson(const std::string &path)
{
    std::vector<std::string> rows;
    rows.reserve(g_cells.size());
    for (const Cell &c : g_cells) {
        obs::JsonRow row;
        row.str("model", c.model)
            .str("workload", c.workload)
            .str("system", c.system)
            .boolean("feasible", c.feasible)
            .num("best_batch", c.batch)
            .num("throughput_tokens_per_s", c.throughput, "%.2f");
        // No anchor (eager infeasible on the workload) -> null, so
        // consumers cannot mistake it for a measured 0x speedup.
        if (c.speedup_vs_eager > 0.0)
            row.num("speedup_vs_eager", c.speedup_vs_eager, "%.3f");
        else
            row.raw("speedup_vs_eager", "null");
        rows.push_back(row.render());
    }
    bench::writeBenchJson(path, "table3_throughput_multi", "cloudA800",
                          rows);
}

} // namespace

int
main(int argc, char **argv)
{
    table(model::geometryPreset("DeepSeek-Distill-Llama-8B"));
    table(model::geometryPreset("Qwen3-8B"));
    std::printf(
        "\nNotes vs paper: the paper anchors speedups to eager at batch "
        "4 (its grey numbers);\nthis harness sweeps every system to its "
        "best feasible batch, so eager anchors are higher and the\n"
        "multipliers correspondingly lower — orderings and OOM cells "
        "are the comparable shape. Quest and\nClusterKV run at their "
        "only feasible batch (1), matching the '-' cells of the paper. "
        "H2O and\nStreamingLLM trade the accuracy the paper's quality "
        "tables report for bounded-KV throughput.\n");
    writeJson(argc > 1 ? argv[1] : "BENCH_table3.json");
    return 0;
}
