/**
 * @file
 * Table 3: multi-request cloud throughput for DeepSeek-Distill-Llama-8B
 * and Qwen3-8B geometries, four [in, out] workloads, systems
 * {eager, FlashAttention, FlashInfer, ShadowKV, SpeContext}. Each cell
 * is the best feasible batch from the paper's batch sweep (batch in
 * grey, speedup vs eager in parentheses, as in the paper).
 */
#include "bench/bench_util.h"
#include "serving/scheduler.h"

using namespace specontext;

namespace {

void
table(const model::ModelConfig &m)
{
    bench::section("Table 3: " + m.name + " (A800, tokens/s @ best "
                                          "feasible batch)");
    core::TimingEngine te;
    const auto systems = std::vector<core::SystemKind>{
        core::SystemKind::HFEager, core::SystemKind::FlashAttention,
        core::SystemKind::FlashInfer, core::SystemKind::ShadowKV,
        core::SystemKind::SpeContext};

    std::printf("%-10s", "workload");
    for (auto s : systems)
        std::printf(" %24s", core::systemKindName(s));
    std::printf("\n");

    for (const auto &w : serving::paperWorkloads()) {
        std::printf("%-10s", w.label().c_str());
        double eager_tp = 0.0;
        for (auto sys : systems) {
            core::TimingConfig tc;
            tc.llm = m;
            tc.hw = sim::HardwareSpec::cloudA800();
            tc.system = sys;
            tc.prompt_len = w.prompt_len;
            tc.gen_len = w.gen_len;
            tc.budget = 2048;
            const auto sweep = serving::sweepBatches(
                te, tc, serving::paperBatchSizes());
            if (!sweep.feasible()) {
                std::printf(" %24s", "OOM");
                continue;
            }
            const auto &best = sweep.bestPoint();
            if (sys == core::SystemKind::HFEager)
                eager_tp = best.result.throughput;
            char cell[64];
            if (eager_tp > 0.0) {
                std::snprintf(cell, sizeof(cell), "%.1f(%ld,%.2fx)",
                              best.result.throughput, best.batch,
                              best.result.throughput / eager_tp);
            } else {
                std::snprintf(cell, sizeof(cell), "%.1f(%ld)",
                              best.result.throughput, best.batch);
            }
            std::printf(" %24s", cell);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    table(model::deepseekDistillLlama8bGeometry());
    table(model::qwen3_8bGeometry());
    std::printf(
        "\nNotes vs paper: the paper anchors speedups to eager at batch "
        "4 (its grey numbers);\nthis harness sweeps every system to its "
        "best feasible batch, so eager anchors are higher and the\n"
        "multipliers correspondingly lower — orderings and OOM cells "
        "are the comparable shape. Quest and\nClusterKV are omitted "
        "(single-request only), matching the '-' cells of the paper.\n");
    return 0;
}
